"""Checkpoint/restart and solver-guard tests.

The paper's single-vector methods exist so that a multi-week calculation
can survive on one stored CI vector.  The contract here:

* a checkpoint round-trips its full restart state bit-for-bit,
* corruption is detected (CRC) and degrades to a fresh start, never to a
  silently wrong resume,
* a solve killed mid-run and restarted from its checkpoint replays the
  exact iteration sequence (olsen/auto) or costs at most one extra
  iteration (davidson, which restarts from the collapsed Ritz vector),
* iterate guards catch NaN/Inf sigmas and runaway energies instead of
  letting them converge to garbage.
"""

import os

import numpy as np
import pytest

from repro.core import (
    Checkpointer,
    CheckpointError,
    CheckpointState,
    CIProblem,
    EnergyDivergenceError,
    FCISolver,
    IterateGuard,
    ModelSpacePreconditioner,
    NonFiniteIterateError,
    auto_adjusted_solve,
    davidson_solve,
    olsen_solve,
    sigma_dgemm,
)
from repro.obs import Telemetry

from tests.conftest import make_random_mo


@pytest.fixture(scope="module")
def ci():
    mo = make_random_mo(6, seed=31)
    mo.h += np.diag(np.linspace(-3, 2, 6)) * 2
    problem = CIProblem(mo, 3, 3)
    precond = ModelSpacePreconditioner(problem, 50)
    return problem, precond, precond.ground_state_guess()


def _state(vec, it=3):
    return CheckpointState(
        method="auto",
        iteration=it,
        n_sigma=it,
        vector=vec,
        meta={"lambda": 0.8, "prev": {"energy": -1.5, "s2": 0.9}},
        energies=[-1.0, -1.4, -1.5],
        residual_norms=[0.5, 0.1, 0.02],
    )


class TestCheckpointer:
    def test_round_trip_bitwise(self, tmp_path):
        cp = Checkpointer(tmp_path / "ck.npz")
        vec = np.random.default_rng(0).standard_normal((20, 20))
        cp.save(_state(vec))
        state = cp.load()
        assert state.method == "auto"
        assert state.iteration == 3
        assert state.n_sigma == 3
        assert np.array_equal(state.vector, vec)  # bitwise
        assert state.meta["lambda"] == 0.8
        assert state.meta["prev"]["energy"] == -1.5
        assert state.energies == [-1.0, -1.4, -1.5]
        assert state.residual_norms == [0.5, 0.1, 0.02]

    def test_load_missing_returns_none(self, tmp_path):
        assert Checkpointer(tmp_path / "nope.npz").load() is None

    def test_exists_and_clear(self, tmp_path):
        cp = Checkpointer(tmp_path / "ck.npz")
        assert not cp.exists()
        cp.save(_state(np.ones(4)))
        assert cp.exists()
        cp.clear()
        assert not cp.exists()

    def test_no_tmp_file_left_behind(self, tmp_path):
        cp = Checkpointer(tmp_path / "ck.npz")
        cp.save(_state(np.ones(4)))
        leftovers = [f for f in os.listdir(tmp_path) if f != "ck.npz"]
        assert leftovers == []

    def test_every_skips_iterations(self, tmp_path):
        cp = Checkpointer(tmp_path / "ck.npz", every=5)
        assert not cp.maybe_save(_state(np.ones(4), it=3))
        assert not cp.exists()
        assert cp.maybe_save(_state(np.ones(4), it=5))
        assert cp.exists()

    def test_force_save_bypasses_every_grid(self, tmp_path):
        # regression: converged/loop-exit states falling off the ``every``
        # grid used to be dropped; ``force=True`` must always persist
        cp = Checkpointer(tmp_path / "ck.npz", every=5)
        assert cp.maybe_save(_state(np.ones(4), it=3), force=True)
        assert cp.exists()

    def test_corruption_detected(self, tmp_path):
        path = tmp_path / "ck.npz"
        cp = Checkpointer(path, telemetry=Telemetry())
        cp.save(_state(np.arange(16.0)))
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError):
            cp.load()
        # restore degrades to a fresh start instead of raising
        assert cp.restore("auto") is None
        assert cp.telemetry.registry.get("solver.checkpoint.rejected").value == 1.0

    def test_method_mismatch_keeps_vector_only(self, tmp_path):
        cp = Checkpointer(tmp_path / "ck.npz")
        vec = np.arange(9.0).reshape(3, 3)
        cp.save(_state(vec))
        state = cp.restore("davidson")
        assert np.array_equal(state.vector, vec)
        assert state.iteration == 0  # restart the iteration count
        assert state.energies == []

    def test_restore_counts(self, tmp_path):
        cp = Checkpointer(tmp_path / "ck.npz", telemetry=Telemetry())
        cp.save(_state(np.ones(4)))
        assert cp.restore("auto") is not None
        reg = cp.telemetry.registry
        assert reg.get("solver.checkpoint.saves").value == 1.0
        assert reg.get("solver.checkpoint.restores").value == 1.0


class _Killed(Exception):
    pass


class TestKillAndRestart:
    @pytest.mark.parametrize(
        "name,solve,kw",
        [
            ("olsen", olsen_solve, dict(step=0.7, max_iterations=250)),
            ("auto", auto_adjusted_solve, {}),
            ("davidson", davidson_solve, {}),
        ],
    )
    def test_resume_matches_uninterrupted(self, ci, tmp_path, name, solve, kw):
        problem, precond, guess = ci

        def sig(C):
            return sigma_dgemm(problem, C)

        ref = solve(sig, guess, precond, **kw)
        assert ref.converged

        path = tmp_path / f"{name}.npz"
        kill_at = max(2, ref.n_iterations // 2)
        calls = [0]

        def sig_killing(C):
            calls[0] += 1
            if calls[0] > kill_at:
                raise _Killed
            return sigma_dgemm(problem, C)

        with pytest.raises(_Killed):
            solve(sig_killing, guess, precond, checkpoint=Checkpointer(path), **kw)

        res = solve(sig, guess, precond, checkpoint=Checkpointer(path), **kw)
        assert res.converged
        assert abs(res.energy - ref.energy) < 1e-10
        # at most one extra iteration total, despite the mid-run kill
        assert res.n_iterations <= ref.n_iterations + 1
        if name in ("olsen", "auto"):
            # single-vector methods replay the exact iteration sequence
            assert res.energies == ref.energies
            assert res.n_iterations == ref.n_iterations


_SOLVERS = [
    ("olsen", olsen_solve, dict(step=0.7, max_iterations=250)),
    ("auto", auto_adjusted_solve, {}),
    ("davidson", davidson_solve, {}),
]


class TestFinalStateDurability:
    @pytest.mark.parametrize("name,solve,kw", _SOLVERS)
    def test_converged_state_saved_off_grid(self, ci, tmp_path, name, solve, kw):
        # regression: with a sparse ``every`` grid, the converged iteration
        # used to be silently dropped unless it happened to land on the grid
        problem, precond, guess = ci

        def sig(C):
            return sigma_dgemm(problem, C)

        path = tmp_path / f"{name}.npz"
        res = solve(
            sig, guess, precond, checkpoint=Checkpointer(path, every=10**6), **kw
        )
        assert res.converged
        state = Checkpointer(path).restore(name)
        assert state is not None
        assert state.iteration == res.n_iterations
        assert state.energies[-1] == res.energy

    @pytest.mark.parametrize("name,solve", [(n, s) for n, s, _ in _SOLVERS])
    def test_exhausted_budget_resume_reports_checkpointed_energy(
        self, ci, tmp_path, name, solve
    ):
        # regression: a resume whose iteration budget was already spent used
        # to report energy=0.0 (auto/davidson) instead of the stored energy
        problem, precond, guess = ci

        def sig(C):
            return sigma_dgemm(problem, C)

        cp = Checkpointer(tmp_path / f"{name}.npz")
        cp.save(
            CheckpointState(
                method=name,
                iteration=7,
                n_sigma=7,
                vector=guess,
                meta={},
                energies=[-1.0, -1.25],
                residual_norms=[0.5, 0.2],
            )
        )
        res = solve(sig, guess, precond, checkpoint=cp, max_iterations=5)
        assert not res.converged
        assert res.energy == -1.25
        assert res.n_sigma == 7


class TestFCISolverIntegration:
    def test_checkpoint_path_roundtrip(self, h2, tmp_path):
        path = tmp_path / "h2.npz"
        first = FCISolver(h2, checkpoint=path).run()
        assert path.exists()
        tele = Telemetry()
        solver = FCISolver(h2, checkpoint=Checkpointer(path, telemetry=tele))
        second = solver.run()
        assert abs(second.energy - first.energy) < 1e-10
        assert tele.registry.get("solver.checkpoint.restores").value == 1.0


class TestGuards:
    def test_nan_sigma_raises(self, ci):
        problem, precond, guess = ci

        def sig_nan(C):
            out = sigma_dgemm(problem, C)
            out.flat[0] = np.nan
            return out

        with pytest.raises(NonFiniteIterateError):
            auto_adjusted_solve(sig_nan, guess, precond)

    def test_energy_divergence_raises(self):
        guard = IterateGuard(divergence_threshold=10.0)
        guard.check(1, -5.0, 0.1)
        guard.check(2, -4.0, 0.1)  # small wobble is fine
        with pytest.raises(EnergyDivergenceError) as e:
            guard.check(3, 200.0, 0.1)
        assert e.value.iteration == 3

    def test_guard_counts_detections(self):
        tele = Telemetry()
        guard = IterateGuard(telemetry=tele)
        with pytest.raises(NonFiniteIterateError):
            guard.check(1, float("nan"), 0.1)
        assert tele.registry.get("faults.detected.nonfinite_iterate").value == 1.0

    def test_divergence_check_disabled(self):
        guard = IterateGuard(divergence_threshold=None)
        guard.check(1, -5.0, 0.1)
        guard.check(2, 1e6, 0.1)  # no watchdog when disabled

    def test_lambda_fallback_counted(self, ci):
        from repro.core.auto_single import _optimal_step

        reasons = []
        lam = _optimal_step(np.nan, 0.1, 0.1, 1.0, reasons.append)
        assert lam == 1.0
        assert reasons == ["non_finite_2x2"]
        lam = _optimal_step(-1.0, 0.1, -2.0, 0.0, reasons.append)
        assert lam == 1.0
        assert reasons[-1] == "non_finite_2x2"
