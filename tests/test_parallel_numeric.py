"""Numeric-mode parallel sigma must agree with the serial kernels exactly."""

import numpy as np
import pytest

from repro.core import ModelSpacePreconditioner, davidson_solve, sigma_dgemm
from repro.parallel import ParallelReport, ParallelSigma
from repro.x1 import X1Config
from repro.x1.engine import RankStats
from tests.helpers import make_random_problem


@pytest.fixture(scope="module")
def problem():
    return make_random_problem(6, 3, 3, seed=31, diag=np.linspace(-3, 2, 6) * 2)


class TestParallelSigma:
    @pytest.mark.parametrize("n_msps", [1, 2, 3, 4, 8])
    def test_matches_serial(self, problem, n_msps):
        C = problem.random_vector(0)
        ref = sigma_dgemm(problem, C)
        ps = ParallelSigma(problem, X1Config(n_msps=n_msps), block_columns=7)
        out = ps(C)
        assert np.max(np.abs(out - ref)) < 1e-10

    def test_open_shell(self):
        prob = make_random_problem(5, 3, 1, seed=3)
        C = prob.random_vector(1)
        ref = sigma_dgemm(prob, C)
        out = ParallelSigma(prob, X1Config(n_msps=3))(C)
        assert np.max(np.abs(out - ref)) < 1e-10

    def test_report_accumulates(self, problem):
        ps = ParallelSigma(problem, X1Config(n_msps=4))
        C = problem.random_vector(2)
        ps(C)
        ps(C)
        assert ps.report.n_calls == 2
        assert ps.report.elapsed > 0
        assert ps.report.flops > 0
        assert "alpha-beta" in ps.report.phase_times
        assert "beta-beta" in ps.report.phase_times

    def test_communication_happens(self, problem):
        ps = ParallelSigma(problem, X1Config(n_msps=4))
        ps(problem.random_vector(0))
        assert ps.report.bytes_communicated > 0

    def test_shape_validation(self, problem):
        ps = ParallelSigma(problem, X1Config(n_msps=2))
        with pytest.raises(ValueError):
            ps(np.zeros((2, 2)))

    def test_more_ranks_than_rows(self):
        prob = make_random_problem(4, 2, 2, seed=9)  # 6x6
        C = prob.random_vector(0)
        ref = sigma_dgemm(prob, C)
        out = ParallelSigma(prob, X1Config(n_msps=8))(C)
        assert np.max(np.abs(out - ref)) < 1e-10


class TestParallelReportMerge:
    """merge() is called once per sigma; statistics must stay meaningful."""

    @staticmethod
    def _stats(finish_times):
        return [
            RankStats(flops=100.0, bytes_sent=8.0, bytes_received=8.0,
                      finish_time=t, phase_times={"alpha-beta": t})
            for t in finish_times
        ]

    def test_load_imbalance_is_max_not_sum(self):
        report = ParallelReport()
        report.merge(self._stats([1.0, 2.0]), elapsed=2.0, imbalance=0.5)
        report.merge(self._stats([1.0, 1.2]), elapsed=1.2, imbalance=0.1)
        report.merge(self._stats([1.0, 1.8]), elapsed=1.8, imbalance=0.4)
        # worst call dominates; a sum would give 1.0 here and grow without
        # bound as calls accumulate
        assert report.load_imbalance == 0.5
        assert report.n_calls == 3

    def test_additive_fields_still_accumulate(self):
        report = ParallelReport()
        report.merge(self._stats([1.0]), elapsed=1.0, imbalance=0.0)
        report.merge(self._stats([2.0]), elapsed=2.0, imbalance=0.0)
        assert report.elapsed == 3.0
        assert report.flops == 200.0
        assert report.bytes_communicated == 32.0
        assert report.phase_times["alpha-beta"] == 3.0

    def test_real_runs_keep_imbalance_bounded(self, problem):
        C = problem.random_vector(2)
        once = ParallelSigma(problem, X1Config(n_msps=4))
        once(C)
        single = once.report.load_imbalance
        thrice = ParallelSigma(problem, X1Config(n_msps=4))
        for _ in range(3):
            thrice(C)
        # deterministic schedule: every call has the same imbalance, and the
        # merged statistic must equal it (a sum would triple it)
        assert thrice.report.load_imbalance == single
        assert thrice.report.n_calls == 3


class TestParallelEigensolve:
    def test_davidson_on_parallel_sigma(self, problem):
        # the whole eigensolve can run on the simulated machine
        pre = ModelSpacePreconditioner(problem, 15)
        ps = ParallelSigma(problem, X1Config(n_msps=4))
        res = davidson_solve(lambda C: ps(C), pre.ground_state_guess(), pre)
        ref = davidson_solve(
            lambda C: sigma_dgemm(problem, C), pre.ground_state_guess(), pre
        )
        assert res.converged
        assert abs(res.energy - ref.energy) < 1e-9
