"""Numeric-mode parallel sigma must agree with the serial kernels exactly."""

import numpy as np
import pytest

from repro.core import CIProblem, ModelSpacePreconditioner, davidson_solve, sigma_dgemm
from repro.parallel import ParallelSigma
from repro.x1 import X1Config
from tests.conftest import make_random_mo


@pytest.fixture(scope="module")
def problem():
    mo = make_random_mo(6, seed=31)
    mo.h += np.diag(np.linspace(-3, 2, 6)) * 2
    return CIProblem(mo, 3, 3)


class TestParallelSigma:
    @pytest.mark.parametrize("n_msps", [1, 2, 3, 4, 8])
    def test_matches_serial(self, problem, n_msps):
        C = problem.random_vector(0)
        ref = sigma_dgemm(problem, C)
        ps = ParallelSigma(problem, X1Config(n_msps=n_msps), block_columns=7)
        out = ps(C)
        assert np.max(np.abs(out - ref)) < 1e-10

    def test_open_shell(self):
        mo = make_random_mo(5, seed=3)
        prob = CIProblem(mo, 3, 1)
        C = prob.random_vector(1)
        ref = sigma_dgemm(prob, C)
        out = ParallelSigma(prob, X1Config(n_msps=3))(C)
        assert np.max(np.abs(out - ref)) < 1e-10

    def test_report_accumulates(self, problem):
        ps = ParallelSigma(problem, X1Config(n_msps=4))
        C = problem.random_vector(2)
        ps(C)
        ps(C)
        assert ps.report.n_calls == 2
        assert ps.report.elapsed > 0
        assert ps.report.flops > 0
        assert "alpha-beta" in ps.report.phase_times
        assert "beta-beta" in ps.report.phase_times

    def test_communication_happens(self, problem):
        ps = ParallelSigma(problem, X1Config(n_msps=4))
        ps(problem.random_vector(0))
        assert ps.report.bytes_communicated > 0

    def test_shape_validation(self, problem):
        ps = ParallelSigma(problem, X1Config(n_msps=2))
        with pytest.raises(ValueError):
            ps(np.zeros((2, 2)))

    def test_more_ranks_than_rows(self):
        mo = make_random_mo(4, seed=9)
        prob = CIProblem(mo, 2, 2)  # 6x6
        C = prob.random_vector(0)
        ref = sigma_dgemm(prob, C)
        out = ParallelSigma(prob, X1Config(n_msps=8))(C)
        assert np.max(np.abs(out - ref)) < 1e-10


class TestParallelEigensolve:
    def test_davidson_on_parallel_sigma(self, problem):
        # the whole eigensolve can run on the simulated machine
        pre = ModelSpacePreconditioner(problem, 15)
        ps = ParallelSigma(problem, X1Config(n_msps=4))
        res = davidson_solve(lambda C: ps(C), pre.ground_state_guess(), pre)
        ref = davidson_solve(
            lambda C: sigma_dgemm(problem, C), pre.ground_state_guess(), pre
        )
        assert res.converged
        assert abs(res.energy - ref.energy) < 1e-9
