"""Differential harness: every sigma implementation against every other.

Seeded random CI problems spanning electron count, orbital count, and spin
are pushed through all registered sigma evaluators — serial DGEMM, serial
MOC, the HamiltonianOperator composition, and ParallelSigma on both
execution backends — and cross-checked against one reference:

* exactness: each evaluator reproduces the dense-Hamiltonian matvec;
* bitwise lanes: the DGEMM-family evaluators (kernel, operator, shm and
  sockets backends) must equal the serial ``sigma_dgemm`` bit for bit,
  the real-process backends additionally for every worker count;
* invariants that hold for *any* correct sigma: Hermitian symmetry
  <Y, sigma(X)> == <sigma(Y), X> and the variational bound
  <C, sigma(C)>/<C, C> >= E0.

The evaluator matrix is parametrized: registering a new backend here is
one entry in ``EVALUATORS`` and the whole matrix applies to it for free.
"""

import numpy as np
import pytest

from repro.core import (
    HamiltonianOperator,
    build_dense_hamiltonian,
    sigma_dgemm,
    sigma_moc,
)
from repro.parallel import ParallelSigma
from repro.x1 import X1Config
from tests.helpers import make_random_problem

# name -> (n_orbitals, n_alpha, n_beta, seed): vary size, filling, and spin
SPACES = {
    "closed-shell": (5, 2, 2, 11),
    "open-shell": (5, 3, 1, 13),
    "odd-electron": (6, 3, 2, 17),
    "high-spin": (6, 4, 1, 19),
}

# one column-block width for every DGEMM-family evaluator AND the serial
# reference: the bitwise guarantee is "identical to sigma_dgemm at the same
# blocking" (a different width changes GEMM operand shapes, hence rounding)
BLOCK_COLUMNS = 3

# name -> (factory, comparison): "bitwise" lanes must equal sigma_dgemm
# exactly; "close" lanes (different arithmetic order) get 1e-10.
EVALUATORS = {
    "dgemm": (
        lambda p: lambda C: sigma_dgemm(p, C, block_columns=BLOCK_COLUMNS),
        "bitwise",
    ),
    "moc": (lambda p: lambda C: sigma_moc(p, C), "close"),
    "operator": (
        lambda p: HamiltonianOperator(p, "dgemm", block_columns=BLOCK_COLUMNS),
        "bitwise",
    ),
    # the compiled kernel's pure-NumPy fallback (and its jitted path, when
    # numba is importable) must match sigma_dgemm bit for bit
    "compiled": (
        lambda p: HamiltonianOperator(p, "compiled", block_columns=BLOCK_COLUMNS),
        "bitwise",
    ),
    "parallel-shm-compiled": (
        lambda p: ParallelSigma(
            p,
            backend="shm",
            kernel="compiled",
            n_workers=2,
            block_columns=BLOCK_COLUMNS,
        ),
        "bitwise",
    ),
    "parallel-simulated": (
        lambda p: ParallelSigma(p, X1Config(n_msps=3)),
        "close",
    ),
    "parallel-shm": (
        lambda p: ParallelSigma(
            p, backend="shm", n_workers=2, block_columns=BLOCK_COLUMNS
        ),
        "bitwise",
    ),
    "parallel-sockets": (
        lambda p: ParallelSigma(
            p, backend="sockets", n_workers=2, block_columns=BLOCK_COLUMNS
        ),
        "bitwise",
    ),
}


@pytest.fixture(scope="module", params=list(SPACES), ids=list(SPACES))
def space(request):
    n, na, nb, seed = SPACES[request.param]
    problem = make_random_problem(n, na, nb, seed=seed)
    H = build_dense_hamiltonian(problem.mo, problem.space_a, problem.space_b)
    return problem, H


@pytest.fixture(scope="module")
def evaluators(space):
    """One instance of every evaluator per space; shm pools torn down once."""
    problem, _ = space
    built = {name: make(problem) for name, (make, _) in EVALUATORS.items()}
    yield built
    for fn in built.values():
        close = getattr(fn, "close", None)
        if close is not None:
            close()


def _assert_matches(name: str, out: np.ndarray, ref: np.ndarray) -> None:
    mode = EVALUATORS[name][1]
    if mode == "bitwise":
        assert np.array_equal(out, ref), f"{name} not bitwise-equal to sigma_dgemm"
    else:
        assert np.max(np.abs(out - ref)) < 1e-10


class TestCrossBackend:
    @pytest.mark.parametrize("name", list(EVALUATORS))
    def test_matches_dense_hamiltonian(self, space, evaluators, name):
        problem, H = space
        for seed in (0, 1):
            C = problem.random_vector(seed)
            dense = (H @ C.ravel()).reshape(problem.shape)
            assert np.max(np.abs(evaluators[name](C) - dense)) < 1e-9

    @pytest.mark.parametrize("name", list(EVALUATORS))
    def test_matches_serial_dgemm(self, space, evaluators, name):
        problem, _ = space
        for seed in (2, 3):
            C = problem.random_vector(seed)
            ref = sigma_dgemm(problem, C, block_columns=BLOCK_COLUMNS)
            _assert_matches(name, evaluators[name](C), ref)

    @pytest.mark.parametrize("backend", ["shm", "sockets"])
    def test_real_backends_bitwise_for_every_worker_count(self, space, backend):
        # result must not depend on the substrate or on how many ranks the
        # blocks land on
        problem, _ = space
        C = problem.random_vector(4)
        ref = sigma_dgemm(problem, C, block_columns=BLOCK_COLUMNS)
        for n_workers in (1, 2, 3):
            with ParallelSigma(
                problem,
                backend=backend,
                n_workers=n_workers,
                block_columns=BLOCK_COLUMNS,
            ) as ps:
                assert np.array_equal(ps(C), ref), (
                    f"{backend} n_workers={n_workers}"
                )


class TestInvariants:
    """Properties any correct sigma operator satisfies, backend-independent."""

    @pytest.mark.parametrize("name", list(EVALUATORS))
    def test_hermitian_symmetry(self, space, evaluators, name):
        problem, _ = space
        X = problem.random_vector(5)
        Y = problem.random_vector(6)
        fn = evaluators[name]
        assert abs(np.vdot(Y, fn(X)) - np.vdot(fn(Y), X)) < 1e-9

    @pytest.mark.parametrize("name", list(EVALUATORS))
    def test_variational_bound(self, space, evaluators, name):
        problem, H = space
        e0 = float(np.linalg.eigvalsh(H)[0])
        fn = evaluators[name]
        for seed in (7, 8):
            C = problem.random_vector(seed)
            rayleigh = float(np.vdot(C, fn(C)) / np.vdot(C, C))
            assert rayleigh >= e0 - 1e-10

    @pytest.mark.parametrize("name", list(EVALUATORS))
    def test_linearity(self, space, evaluators, name):
        problem, _ = space
        fn = evaluators[name]
        C1 = problem.random_vector(9)
        C2 = problem.random_vector(10)
        combined = fn(1.5 * C1 - 0.25 * C2)
        assert np.allclose(combined, 1.5 * fn(C1) - 0.25 * fn(C2), atol=1e-9)
