"""The plan/kernel/operator layer: batching, caching, registry, composition."""

import numpy as np
import pytest

from repro.core import (
    DgemmKernel,
    FCISolver,
    HamiltonianOperator,
    ModelSpacePreconditioner,
    MocKernel,
    SigmaPlan,
    SpinOperator,
    davidson_multiroot,
    kernel_names,
    make_kernel,
    sigma_dgemm,
    sigma_moc,
)
from tests.helpers import (
    make_random_problem,
    make_symmetry_problem,
    model_space_guesses,
    stack_of_vectors,
)


@pytest.fixture(scope="module")
def problem():
    # asymmetric space (na != nb, open shell) exercises all four sigma terms
    return make_random_problem(6, 3, 2, seed=7, diag=np.linspace(-2, 2, 6))


@pytest.fixture(scope="module")
def sym_problem():
    return make_symmetry_problem(6, 3, 3, seed=19)


class TestBatchedBitwise:
    """apply_batch must equal the vector-at-a-time loop *bitwise*."""

    @pytest.mark.parametrize("kernel_cls", [DgemmKernel, MocKernel])
    def test_batch_equals_loop(self, problem, kernel_cls):
        plan = SigmaPlan.for_problem(problem)
        kern = kernel_cls(plan)
        C = stack_of_vectors(problem, 4)
        batch = kern.apply_batch(C, kern.make_counters())
        for i in range(4):
            single = kern.apply(C[i], kern.make_counters())
            assert np.array_equal(batch[i], single)

    @pytest.mark.parametrize("kernel_cls", [DgemmKernel, MocKernel])
    def test_batch_equals_loop_closed_shell(self, kernel_cls):
        prob = make_random_problem(5, 2, 2, seed=2)
        kern = kernel_cls(SigmaPlan.for_problem(prob))
        C = stack_of_vectors(prob, 3, seed=10)
        batch = kern.apply_batch(C, kern.make_counters())
        for i in range(3):
            assert np.array_equal(batch[i], kern.apply(C[i], kern.make_counters()))

    def test_narrow_block_columns(self, problem):
        # block width 1 is the hardest case for segment-sum determinism
        kern = DgemmKernel(SigmaPlan.for_problem(problem), block_columns=1)
        C = stack_of_vectors(problem, 3, seed=4)
        batch = kern.apply_batch(C, kern.make_counters())
        for i in range(3):
            assert np.array_equal(batch[i], kern.apply(C[i], kern.make_counters()))

    def test_kernels_match_wrappers(self, problem):
        # the thin sigma_dgemm / sigma_moc wrappers run the same kernels
        C = problem.random_vector(3)
        plan = SigmaPlan.for_problem(problem)
        assert np.array_equal(
            sigma_dgemm(problem, C), DgemmKernel(plan).apply(C, None)
        )
        assert np.array_equal(sigma_moc(problem, C), MocKernel(plan).apply(C, None))


class TestBatchedCounters:
    def test_batch_issues_fewer_dgemms(self, problem):
        plan = SigmaPlan.for_problem(problem)
        kern = DgemmKernel(plan)
        C = stack_of_vectors(problem, 3)
        batched = kern.make_counters()
        kern.apply_batch(C, batched)
        singles = kern.make_counters()
        for i in range(3):
            kern.apply(C[i], singles)
        # identical arithmetic ...
        assert batched.dgemm_flops == singles.dgemm_flops
        # ... through strictly fewer DGEMM invocations (one batched GEMM
        # covers what k separate sweeps did)
        assert batched.dgemm_calls < singles.dgemm_calls
        assert batched.dgemm_calls * 3 == singles.dgemm_calls

    def test_operator_accumulates_counters(self, problem):
        op = HamiltonianOperator(problem)
        op.apply_batch(stack_of_vectors(problem, 3))
        assert op.n_calls == 3
        assert op.n_batches == 1
        assert op.counters.dgemm_calls > 0


class TestPlanCaching:
    def test_for_problem_returns_same_object(self, problem):
        assert SigmaPlan.for_problem(problem) is SigmaPlan.for_problem(problem)
        assert problem.sigma_plan is SigmaPlan.for_problem(problem)

    def test_operators_share_one_plan(self, problem):
        a = HamiltonianOperator(problem, "dgemm")
        b = HamiltonianOperator(problem, "moc")
        assert a.plan is b.plan
        assert a.kernel.plan is b.kernel.plan

    def test_rebuild_mode_does_not_touch_cache(self, problem):
        cached = SigmaPlan.for_problem(problem)
        rebuilt = SigmaPlan(problem, reuse_problem_cache=False)
        assert rebuilt is not cached
        assert SigmaPlan.for_problem(problem) is cached

    def test_default_block_columns_heuristic(self, problem):
        plan = SigmaPlan.for_problem(problem)
        m = plan.default_block_columns()
        assert 1 <= m <= 1024
        # tiny budget clamps down, huge budget clamps at the ceiling
        assert plan.default_block_columns(memory_budget_mb=0) == 1
        assert plan.default_block_columns(memory_budget_mb=10**6) == 1024
        # batching k vectors shrinks the per-column budget share
        assert plan.default_block_columns(batch=64) <= m


class TestKernelRegistry:
    def test_names(self):
        names = kernel_names()
        assert "dgemm" in names and "moc" in names

    def test_make_kernel_unknown_lists_registered(self, problem):
        plan = SigmaPlan.for_problem(problem)
        with pytest.raises(ValueError, match="dgemm"):
            make_kernel("spmv", plan)

    def test_solver_validates_at_construction(self, h2):
        with pytest.raises(ValueError, match="registered sigma kernel"):
            FCISolver(h2, algorithm="spmv")
        with pytest.raises(ValueError, match="moc"):
            FCISolver(h2, algorithm="")


class TestOperatorComposition:
    def test_projection_and_penalty_compose(self, sym_problem):
        prob = sym_problem
        spin_op = SpinOperator(prob)
        op = HamiltonianOperator(prob, spin_penalty=0.5, s2_target=0.0)
        C = prob.random_vector(1)
        expected = prob.project_symmetry(
            sigma_dgemm(prob, C) + 0.5 * spin_op.apply_s2(C)
        )
        assert np.array_equal(op(C), expected)
        # batch path applies the same decoration per vector
        batch = op.apply_batch(np.stack([C, prob.random_vector(2)]))
        assert np.array_equal(batch[0], expected)

    def test_projection_keeps_result_in_irrep(self, sym_problem):
        op = HamiltonianOperator(sym_problem)
        sigma = op(sym_problem.random_vector(0))
        mask = sym_problem.symmetry_mask
        assert np.all(sigma[~mask] == 0.0)

    def test_plain_operator_is_bare_sigma(self, problem):
        op = HamiltonianOperator(problem)
        C = problem.random_vector(5)
        assert np.array_equal(op(C), sigma_dgemm(problem, C))


class TestMultirootBatching:
    def test_multiroot_uses_batched_sigma(self, problem):
        pre = ModelSpacePreconditioner(problem, 12)
        op = HamiltonianOperator(problem)
        guesses = model_space_guesses(problem, pre, 3)
        res = davidson_multiroot(op, guesses, pre, n_roots=3)
        assert res.converged
        # the block solver went through apply_batch: strictly fewer batches
        # than sigma evaluations
        assert op.n_batches < op.n_calls

        # and the batched evaluation spends strictly fewer DGEMM invocations
        # than the same number of single-vector calls would
        singles = HamiltonianOperator(problem)
        for g in guesses:
            singles(g)
        per_single = singles.counters.dgemm_calls / singles.n_calls
        assert op.counters.dgemm_calls < per_single * op.n_calls

    def test_multiroot_energies_match_loop(self, problem):
        pre = ModelSpacePreconditioner(problem, 12)
        guesses = model_space_guesses(problem, pre, 2)
        op = HamiltonianOperator(problem)
        batched = davidson_multiroot(op, guesses, pre, n_roots=2)
        looped = davidson_multiroot(
            lambda C: sigma_dgemm(problem, C), guesses, pre, n_roots=2
        )
        assert np.allclose(batched.energies, looped.energies, atol=1e-9)
