"""Storage-layer tests: store conformance, typed checkpoints, CDFCI.

Three groups:

* a **conformance suite** run against every registered CI-vector store
  backend — the protocol contract (blocks, axpy/dot/norm, nonzeros,
  resident-byte semantics) that lets solvers stay backend-agnostic;
* **store-typed checkpoints** — a dense restart refuses an out-of-core
  checkpoint instead of silently loading it, and the mmap sidecar
  round-trips as a read-only memory map;
* **differential solves** — mmap-backed Davidson under a tiny block
  budget matches the dense run to 1e-10, and CDFCI matches dense FCI on
  two molecules to 1e-6 while every sweep energy respects the
  variational bound.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import FCISolver, Checkpointer
from repro.core.checkpoint import CheckpointState
from repro.core.solver import _METHODS, method_names, register_method
from repro.core.vectors import (
    CIVectorStore,
    DenseStore,
    MmapStore,
    SparseStore,
    as_dense_array,
    make_store,
    publish_store_metrics,
    store_kinds,
)
from repro.obs import Telemetry

SHAPE = (6, 4)
KINDS = ("dense", "mmap", "sparse")


def _make(kind, tmp_path):
    if kind == "mmap":
        return make_store(kind, SHAPE, directory=str(tmp_path))
    return make_store(kind, SHAPE)


def _payload(seed=3):
    rng = np.random.default_rng(seed)
    arr = rng.standard_normal(SHAPE)
    arr[rng.random(SHAPE) < 0.4] = 0.0  # leave genuine zeros for sparse paths
    return arr


# -- registry -----------------------------------------------------------------


class TestRegistry:
    def test_all_backends_registered(self):
        assert store_kinds() == ("dense", "mmap", "sparse")

    def test_unknown_kind_lists_registry(self):
        with pytest.raises(ValueError, match="dense, mmap, sparse"):
            make_store("hdf5", SHAPE)

    def test_make_store_constructs_the_named_class(self, tmp_path):
        assert isinstance(make_store("dense", SHAPE), DenseStore)
        assert isinstance(make_store("mmap", SHAPE, directory=tmp_path), MmapStore)
        assert isinstance(make_store("sparse", SHAPE), SparseStore)


# -- protocol conformance (every backend) -------------------------------------


@pytest.mark.parametrize("kind", KINDS)
class TestStoreConformance:
    def test_satisfies_protocol(self, kind, tmp_path):
        store = _make(kind, tmp_path)
        assert isinstance(store, CIVectorStore)
        assert store.kind == kind
        assert store.shape == SHAPE
        store.close()

    def test_write_as_ndarray_roundtrip(self, kind, tmp_path):
        store = _make(kind, tmp_path)
        arr = _payload()
        store.write(arr)
        assert np.array_equal(np.asarray(store.as_ndarray()).reshape(SHAPE), arr)
        assert np.array_equal(as_dense_array(store).reshape(SHAPE), arr)
        store.close()

    def test_block_views_tile_the_vector(self, kind, tmp_path):
        store = _make(kind, tmp_path)
        arr = _payload()
        store.write(arr)
        tiled = np.hstack(
            [store.to_dense_block(lo, min(lo + 3, SHAPE[1])) for lo in range(0, SHAPE[1], 3)]
        )
        assert np.array_equal(tiled, arr)
        store.close()

    def test_axpy_dot_norm_match_numpy(self, kind, tmp_path):
        a, b = _payload(1), _payload(2)
        store = _make(kind, tmp_path)
        other = _make(kind, tmp_path)
        store.write(a)
        other.write(b)
        assert store.dot(other) == pytest.approx(np.vdot(a, b), abs=1e-14)
        assert store.dot(b) == pytest.approx(np.vdot(a, b), abs=1e-14)
        assert store.norm() == pytest.approx(np.linalg.norm(a), abs=1e-14)
        store.axpy(-0.5, other)
        assert np.allclose(
            np.asarray(store.as_ndarray()).reshape(SHAPE), a - 0.5 * b, atol=1e-15
        )
        store.close()
        other.close()

    def test_iter_nonzero_matches_dense_nonzeros(self, kind, tmp_path):
        arr = _payload()
        store = _make(kind, tmp_path)
        store.write(arr)
        got = dict(store.iter_nonzero())
        want = {
            (int(i), int(j)): arr[i, j] for i, j in zip(*np.nonzero(arr))
        }
        assert got == want
        store.close()

    def test_allocate_gives_fresh_zeroed_sibling(self, kind, tmp_path):
        store = _make(kind, tmp_path)
        store.write(_payload())
        fresh = store.allocate()
        assert fresh.shape == store.shape
        assert fresh.norm() == 0.0
        fresh.close()
        store.close()

    def test_flush_and_close_are_safe(self, kind, tmp_path):
        store = _make(kind, tmp_path)
        store.write(_payload())
        store.flush()
        store.close()


# -- backend-specific semantics ----------------------------------------------


class TestResidentBytes:
    def test_dense_pins_everything(self):
        store = make_store("dense", SHAPE)
        assert store.nbytes == 8 * SHAPE[0] * SHAPE[1]
        assert store.resident_nbytes == store.nbytes

    def test_mmap_pins_nothing(self, tmp_path):
        store = make_store("mmap", SHAPE, directory=tmp_path)
        assert store.nbytes == 8 * SHAPE[0] * SHAPE[1]
        assert store.resident_nbytes == 0
        store.close()

    def test_sparse_scales_with_occupancy(self):
        store = make_store("sparse", SHAPE)
        empty = store.resident_nbytes
        store.scatter_add([0, 5, 9], [1.0, 2.0, 3.0])
        assert store.resident_nbytes > empty
        assert store.resident_nbytes == store.nbytes

    def test_metrics_report_resident_vs_total(self, tmp_path):
        tele = Telemetry()
        stores = [
            make_store("mmap", SHAPE, directory=tmp_path),
            make_store("dense", SHAPE),
        ]
        publish_store_metrics(tele.registry, stores)
        assert tele.registry.get("vectors.count").value == 2.0
        assert tele.registry.get("vectors.total_bytes").value == float(
            2 * 8 * SHAPE[0] * SHAPE[1]
        )
        # only the dense store's bytes are pinned
        assert tele.registry.get("vectors.resident_bytes").value == float(
            8 * SHAPE[0] * SHAPE[1]
        )
        stores[0].close()


class TestMmapStore:
    def test_payload_lives_in_a_file(self, tmp_path):
        store = make_store("mmap", SHAPE, directory=tmp_path)
        arr = _payload()
        store.write(arr)
        store.flush()
        assert np.array_equal(np.load(store.path), arr)

    def test_owned_file_removed_on_close(self, tmp_path):
        store = make_store("mmap", SHAPE, directory=tmp_path)
        path = store.path
        assert os.path.exists(path)
        store.close()
        assert not os.path.exists(path)

    def test_reopen_existing_path(self, tmp_path):
        arr = _payload()
        first = make_store("mmap", SHAPE, directory=tmp_path)
        first.write(arr)
        first.flush()
        second = MmapStore(SHAPE, path=first.path, mode="r+")
        assert np.array_equal(np.asarray(second.as_ndarray()), arr)
        second.close()  # not the owner: file survives
        assert os.path.exists(first.path)
        first.close()

    def test_reopen_rejects_wrong_shape(self, tmp_path):
        first = make_store("mmap", SHAPE, directory=tmp_path)
        with pytest.raises(ValueError, match="holds shape"):
            MmapStore((3, 3), path=first.path, mode="r+")
        first.close()


class TestSparseStore:
    def test_scatter_add_accumulates_duplicates(self):
        store = make_store("sparse", SHAPE)
        store.scatter_add([4, 4, 7], [1.0, 2.0, 5.0])
        assert store.get(4) == 3.0
        assert store.get(7) == 5.0
        assert store.get(0) == 0.0
        assert store.nnz == 2

    def test_get_many_returns_zero_for_absent_keys(self):
        store = make_store("sparse", SHAPE)
        store.set(3, 1.5)
        assert np.array_equal(store.get_many([3, 11, 3]), [1.5, 0.0, 1.5])

    def test_sibling_shares_slot_order(self):
        c = make_store("sparse", SHAPE)
        b = c.sibling()
        c.scatter_add([9, 2, 17], [1.0, 2.0, 3.0])
        b.scatter_add([2, 9], [20.0, 10.0])
        assert np.array_equal(c.keys, b.keys)  # one index, one slot order
        assert np.array_equal(b.values, [10.0, 20.0, 0.0])

    def test_compact_keeps_topk_and_reindexes_siblings(self):
        c = make_store("sparse", SHAPE, capacity=2)
        b = c.sibling()
        c.scatter_add([1, 2, 3, 4], [0.1, -5.0, 0.2, 4.0])
        b.scatter_add([1, 2, 3, 4], [10.0, 20.0, 30.0, 40.0])
        dropped = c.compact()
        assert dropped == 2
        assert set(c.keys.tolist()) == {2, 4}
        assert sorted(b.values.tolist()) == [20.0, 40.0]
        assert b.get(1) == 0.0  # dropped in the sibling too

    def test_compact_is_deterministic_under_ties(self):
        runs = []
        for _ in range(2):
            store = make_store("sparse", SHAPE)
            store.scatter_add([5, 1, 9, 3], [1.0, 1.0, 1.0, 1.0])
            store.compact(2)
            runs.append(store.keys.tolist())
        assert runs[0] == runs[1]

    def test_compact_slots_honors_explicit_ranking(self):
        store = make_store("sparse", SHAPE)
        store.scatter_add([1, 2, 3], [9.0, 1.0, 5.0])
        store.compact_slots(np.array([0, 2]))
        assert store.keys.tolist() == [1, 3]
        assert store.values.tolist() == [9.0, 5.0]

    def test_fill_only_clears(self):
        store = make_store("sparse", SHAPE)
        store.set(5, 2.0)
        store.fill(0.0)
        assert store.norm() == 0.0
        with pytest.raises(ValueError, match="cleared"):
            store.fill(1.0)

    def test_dot_across_representations(self):
        a, b = _payload(4), _payload(5)
        sa = make_store("sparse", SHAPE)
        sa.write(a)
        aligned = sa.sibling()
        aligned.axpy(1.0, b)
        foreign = make_store("sparse", SHAPE)
        foreign.write(b)
        want = float(np.vdot(a, b))
        assert sa.dot(aligned) == pytest.approx(want, abs=1e-13)
        assert sa.dot(foreign) == pytest.approx(want, abs=1e-13)
        assert sa.dot(b) == pytest.approx(want, abs=1e-13)


# -- store-typed checkpoints --------------------------------------------------


def _state(vec, store_kind):
    return CheckpointState(
        method="auto",
        iteration=4,
        n_sigma=4,
        vector=vec,
        meta={"prev_e": -1.0},
        energies=[-1.0],
        residual_norms=[0.1],
        store_kind=store_kind,
    )


class TestStoreTypedCheckpoints:
    def test_peek_reports_store_kind(self, tmp_path):
        cp = Checkpointer(tmp_path / "ck.npz")
        cp.save(_state(np.ones((3, 3)), "mmap"))
        assert cp.peek()["store"] == "mmap"

    def test_mmap_checkpoint_uses_sidecar_and_maps_on_load(self, tmp_path):
        cp = Checkpointer(tmp_path / "ck.npz")
        vec = _payload()
        cp.save(_state(vec, "mmap"))
        assert os.path.exists(cp.sidecar_path)
        state = cp.load()
        assert isinstance(state.vector, np.memmap)
        assert not state.vector.flags.writeable
        assert np.array_equal(np.asarray(state.vector), vec)

    def test_dense_restart_refuses_mmap_checkpoint(self, tmp_path):
        cp = Checkpointer(tmp_path / "ck.npz", telemetry=Telemetry())
        cp.save(_state(np.ones((3, 3)), "mmap"))
        assert cp.restore("auto", store_kind="dense") is None
        reg = cp.telemetry.registry
        assert reg.get("solver.checkpoint.store_mismatch").value == 1.0

    def test_matching_store_kind_restores(self, tmp_path):
        cp = Checkpointer(tmp_path / "ck.npz")
        vec = _payload()
        cp.save(_state(vec, "mmap"))
        state = cp.restore("auto", store_kind="mmap")
        assert state is not None and state.iteration == 4
        cp2 = Checkpointer(tmp_path / "ck2.npz")
        cp2.save(_state(vec, "dense"))
        assert cp2.restore("auto", store_kind="dense") is not None

    def test_extra_arrays_roundtrip_with_crc(self, tmp_path):
        cp = Checkpointer(tmp_path / "ck.npz")
        state = _state(np.ones(4), "sparse")
        state.arrays = {"keys": np.array([3, 1, 4]), "c": np.array([0.1, 0.2, 0.3])}
        cp.save(state)
        back = cp.load()
        assert np.array_equal(back.arrays["keys"], [3, 1, 4])
        assert np.array_equal(back.arrays["c"], [0.1, 0.2, 0.3])


# -- the eigensolver method registry ------------------------------------------


class TestMethodRegistry:
    def test_builtin_methods_registered(self):
        assert set(method_names()) >= {"auto", "davidson", "olsen", "olsen-damped", "cdfci"}

    def test_register_method_extends_the_driver(self, h2):
        @register_method("probe")
        def _probe(solver, problem, sigma_fn, guess, precond, store, kwargs):
            return _METHODS["davidson"](
                solver, problem, sigma_fn, guess, precond, store, kwargs
            )

        try:
            assert "probe" in method_names()
            res = FCISolver(h2, "sto-3g", method="probe").run()
            assert res.solve.converged
        finally:
            del _METHODS["probe"]

    def test_unknown_method_rejected_with_registry_listing(self, h2):
        with pytest.raises(ValueError, match="registered eigensolver"):
            FCISolver(h2, "sto-3g", method="lanczos")

    def test_store_kind_validation(self, h2):
        with pytest.raises(ValueError, match="store kind"):
            FCISolver(h2, "sto-3g", vector_store="hdf5")
        with pytest.raises(ValueError, match="sparse stores back the cdfci"):
            FCISolver(h2, "sto-3g", vector_store="sparse")
        with pytest.raises(ValueError, match="cdfci solves on sparse"):
            FCISolver(h2, "sto-3g", method="cdfci", vector_store="mmap")
        with pytest.raises(ValueError, match="spin penalty"):
            FCISolver(h2, "sto-3g", method="cdfci", spin_penalty=0.4)
        with pytest.raises(ValueError, match="ParallelSigma"):
            FCISolver(h2, "sto-3g", method="cdfci", parallel="simulated")


# -- differential solves ------------------------------------------------------


@pytest.fixture(scope="module")
def dense_reference(h2, heh_plus):
    return {
        "H2": FCISolver(h2, "sto-3g", method="davidson").run(),
        "HeH+": FCISolver(heh_plus, "sto-3g", method="davidson").run(),
    }


class TestOutOfCoreSolves:
    def test_mmap_davidson_matches_dense(self, h2, dense_reference):
        res = FCISolver(h2, "sto-3g", method="davidson", vector_store="mmap").run()
        assert res.solve.converged
        assert abs(res.energy - dense_reference["H2"].energy) < 1e-10

    def test_mmap_under_tiny_block_budget(self, heh_plus, dense_reference):
        # the oom-smoke shape: out-of-core vectors + a deliberately starved
        # kernel block budget must still reproduce the dense energy
        res = FCISolver(
            heh_plus,
            "sto-3g",
            method="davidson",
            vector_store={"kind": "mmap"},
            block_columns=1,
        ).run()
        assert res.solve.converged
        assert abs(res.energy - dense_reference["HeH+"].energy) < 1e-10

    def test_mmap_single_vector_methods_match(self, h2, dense_reference):
        for method in ("auto", "olsen"):
            res = FCISolver(h2, "sto-3g", method=method, vector_store="mmap").run()
            assert res.solve.converged
            assert abs(res.energy - dense_reference["H2"].energy) < 1e-10

    def test_store_metrics_published(self, h2, tmp_path):
        tele = Telemetry()
        res = FCISolver(
            h2,
            "sto-3g",
            method="davidson",
            vector_store={"kind": "mmap", "directory": str(tmp_path)},
            telemetry=tele,
        ).run()
        assert res.solve.converged
        assert tele.registry.get("vectors.resident_bytes").value == 0.0
        assert tele.registry.get("vectors.total_bytes").value > 0.0


class TestCDFCI:
    @pytest.mark.parametrize("name", ["H2", "HeH+"])
    def test_matches_dense_fci(self, name, h2, heh_plus, dense_reference):
        mol = {"H2": h2, "HeH+": heh_plus}[name]
        res = FCISolver(mol, "sto-3g", method="cdfci").run()
        ref = dense_reference[name]
        assert res.solve.converged
        assert res.solve.method == "cdfci"
        assert abs(res.energy - ref.energy) < 1e-6

    @pytest.mark.parametrize("name", ["H2", "HeH+"])
    def test_never_violates_variational_bound(self, name, h2, heh_plus, dense_reference):
        mol = {"H2": h2, "HeH+": heh_plus}[name]
        res = FCISolver(mol, "sto-3g", method="cdfci").run()
        ref = dense_reference[name]
        sweeps = np.asarray(res.solve.energies) + res.mo.e_core
        assert np.all(sweeps >= ref.energy - 1e-9)

    def test_capacity_bound_still_matches(self, heh_plus, dense_reference):
        res = FCISolver(
            heh_plus,
            "sto-3g",
            method="cdfci",
            vector_store={"kind": "sparse", "capacity": 12},
        ).run()
        assert res.solve.converged
        assert abs(res.energy - dense_reference["HeH+"].energy) < 1e-6

    def test_checkpoint_resume_replays_exactly(self, h2, tmp_path):
        from repro.core.cdfci import cdfci_solve

        problem, _, _ = FCISolver(h2, "sto-3g").build_problem()
        full = cdfci_solve(problem)
        assert full.converged

        path = tmp_path / "cd.npz"
        partial = cdfci_solve(problem, checkpoint=Checkpointer(path), max_iterations=1)
        assert not partial.converged
        resumed = cdfci_solve(problem, checkpoint=Checkpointer(path))
        assert resumed.converged
        assert resumed.energy == full.energy
        assert list(resumed.energies) == list(full.energies)

    def test_normalized_vector_and_spin(self, h2):
        res = FCISolver(h2, "sto-3g", method="cdfci").run()
        assert np.linalg.norm(res.vector) == pytest.approx(1.0, abs=1e-10)
        assert res.s_squared == pytest.approx(0.0, abs=1e-8)
