"""End-to-end tests of the FCISolver driver."""

import numpy as np
import pytest

from repro import FCISolver, Molecule, fci
from repro.core import build_dense_hamiltonian


class TestH2:
    @pytest.fixture(scope="class")
    def result(self, h2):
        return FCISolver(h2, "sto-3g", model_space_size=2).run()

    def test_energy_vs_dense(self, result):
        H = build_dense_hamiltonian(result.mo, result.problem.space_a, result.problem.space_b)
        e0 = np.linalg.eigvalsh(H)[0] + result.mo.e_core
        assert abs(result.energy - e0) < 1e-9

    def test_known_fci_energy(self, result):
        # H2/STO-3G at R = 1.4: FCI about -1.13727 Eh
        assert abs(result.energy - (-1.137276)) < 1e-4

    def test_below_scf(self, result):
        assert result.energy < result.scf_energy
        assert result.correlation_energy < 0

    def test_spin_pure_singlet(self, result):
        assert abs(result.s_squared) < 1e-8

    def test_all_methods_agree(self, h2):
        energies = []
        for method in ["davidson", "auto", "olsen", "olsen-damped"]:
            r = FCISolver(h2, "sto-3g", method=method, model_space_size=2).run()
            assert r.solve.converged, method
            energies.append(r.energy)
        assert np.ptp(energies) < 1e-8

    def test_algorithms_agree(self, h2):
        e1 = FCISolver(h2, "sto-3g", algorithm="dgemm").run().energy
        e2 = FCISolver(h2, "sto-3g", algorithm="moc").run().energy
        assert abs(e1 - e2) < 1e-9


class TestValidation:
    def test_bad_method(self, h2):
        with pytest.raises(ValueError):
            FCISolver(h2, method="power-iteration")

    def test_bad_algorithm(self, h2):
        with pytest.raises(ValueError):
            FCISolver(h2, algorithm="spmv")

    def test_cannot_freeze_too_much(self, h2):
        with pytest.raises(ValueError):
            FCISolver(h2, frozen_core=2).run()


class TestOpenShellAndSymmetry:
    def test_oxygen_triplet(self, oxygen_triplet):
        r = FCISolver(
            oxygen_triplet, "sto-3g", frozen_core=1, point_group="D2h"
        ).run()
        assert r.solve.converged
        assert abs(r.s_squared - 2.0) < 1e-6  # triplet
        assert r.energy < r.scf_energy

    def test_symmetry_reduces_dimension(self, oxygen_triplet):
        r = FCISolver(oxygen_triplet, "sto-3g", frozen_core=1, point_group="D2h").run()
        assert r.problem.symmetry_dimension() < r.problem.dimension

    def test_symmetry_does_not_change_energy(self, oxygen_triplet):
        r_sym = FCISolver(oxygen_triplet, "sto-3g", frozen_core=1, point_group="D2h").run()
        r_raw = FCISolver(oxygen_triplet, "sto-3g", frozen_core=1).run()
        assert abs(r_sym.energy - r_raw.energy) < 1e-7

    def test_frozen_core_sane(self, oxygen_triplet):
        r_all = FCISolver(oxygen_triplet, "sto-3g").run()
        r_fc = FCISolver(oxygen_triplet, "sto-3g", frozen_core="auto").run()
        # frozen-core FCI is above all-electron FCI, but only slightly
        assert r_fc.energy >= r_all.energy - 1e-9
        assert r_fc.energy - r_all.energy < 0.05

    def test_auto_frozen_core_counts(self, water):
        solver = FCISolver(water, frozen_core="auto")
        assert solver._n_frozen() == 1


class TestOrbitalInvariance:
    def test_fci_energy_invariant_to_orbitals(self, heh_plus):
        # FCI in the full space is invariant to the orbital choice: compare
        # canonical RHF orbitals vs symmetrically-orthogonalized AOs
        from repro.scf import compute_ao_integrals, transform
        from repro.core import CIProblem, davidson_solve, ModelSpacePreconditioner, sigma_dgemm

        ao = compute_ao_integrals(heh_plus, "sto-3g")
        r1 = FCISolver(heh_plus, "sto-3g").run()

        evals, evecs = np.linalg.eigh(ao.S)
        X = evecs @ np.diag(evals**-0.5) @ evecs.T  # Lowdin orbitals
        mo = transform(ao, X)
        prob = CIProblem(mo, 1, 1)
        pre = ModelSpacePreconditioner(prob, 4)
        res = davidson_solve(
            lambda C: sigma_dgemm(prob, C), pre.ground_state_guess(), pre
        )
        assert abs((res.energy + mo.e_core) - r1.energy) < 1e-8


class TestConvenience:
    def test_fci_function(self, h2):
        r = fci(h2, "sto-3g")
        assert abs(r.energy - (-1.137276)) < 1e-4

    def test_repr(self, h2):
        r = fci(h2, "sto-3g")
        assert "FCIResult" in repr(r)
