"""Tests for the memory-footprint model (paper section 2.2)."""

import pytest

from repro.core import davidson_io_penalty, method_footprints
from repro.x1 import X1Config


class TestFootprints:
    def test_three_methods(self):
        fps = method_footprints(1e9, 128)
        assert len(fps) == 3
        assert fps[0].method.startswith("davidson")

    def test_davidson_dominates(self):
        fps = method_footprints(64_931_348_928, 432)
        dav, olsen, auto = fps
        assert dav.total_bytes > olsen.total_bytes
        assert olsen.total_bytes == auto.total_bytes  # both single-vector

    def test_per_msp_scaling(self):
        a = method_footprints(1e9, 100)[0]
        b = method_footprints(1e9, 200)[0]
        assert abs(a.bytes_per_msp - 2 * b.bytes_per_msp) < 1e-6

    def test_subspace_parameter(self):
        small = method_footprints(1e9, 10, davidson_subspace=4)[0]
        big = method_footprints(1e9, 10, davidson_subspace=20)[0]
        assert big.total_bytes > small.total_bytes

    def test_fits(self):
        fp = method_footprints(1e6, 4)[2]
        assert fp.fits(1e12)
        assert not fp.fits(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            method_footprints(0, 4)
        with pytest.raises(ValueError):
            method_footprints(1e6, 0)

    def test_c2_paper_scale_sanity(self):
        # C2: single-vector total ~ 4 vectors x 65e9 x 8 B = ~2 TB; the X1
        # at ORNL had enough aggregate memory for that but not for a
        # 13-vector Davidson subspace + sigma images (~13 TB)
        fps = method_footprints(64_931_348_928, 432)
        assert 1e12 < fps[2].total_bytes < 4e12
        assert fps[0].total_bytes > 1e13


class TestIOPenalty:
    def test_positive_and_scaling(self):
        cfg = X1Config()
        p1 = davidson_io_penalty(1e9, cfg)
        p2 = davidson_io_penalty(2e9, cfg)
        assert p1 > 0
        assert abs(p2 - 2 * p1) < 1e-6

    def test_subspace_scaling(self):
        cfg = X1Config()
        a = davidson_io_penalty(1e9, cfg, davidson_subspace=6)
        b = davidson_io_penalty(1e9, cfg, davidson_subspace=24)
        assert b > 2 * a

    def test_c2_io_infeasible(self):
        # the paper's point: disk-backed subspaces waste the machine
        penalty = davidson_io_penalty(64_931_348_928, X1Config())
        compute = 25 * 249.0  # the actual single-vector run
        assert penalty > 10 * compute
