"""Tests for excitation tables against brute-force operator application."""

import numpy as np
import pytest

from repro.core import DoubleAnnihilationTable, SingleExcitationTable, StringSpace
from repro.core.excitations import SingleAnnihilationTable
from repro.core.hamiltonian import apply_annihilation, apply_creation


def brute_epq(space: StringSpace, p: int, q: int) -> np.ndarray:
    """Dense E_pq = a+_p a_q built directly from operator application."""
    M = np.zeros((space.size, space.size))
    for j in range(space.size):
        m1, s1 = apply_annihilation(int(space.masks[j]), q)
        if s1 == 0:
            continue
        m2, s2 = apply_creation(m1, p)
        if s2 == 0:
            continue
        M[space.index(m2), j] = s1 * s2
    return M


class TestSingleExcitationTable:
    @pytest.mark.parametrize("n,k", [(4, 2), (5, 3), (6, 1), (5, 5)])
    def test_matches_brute_force(self, n, k):
        space = StringSpace(n, k)
        table = SingleExcitationTable(space)
        for p in range(n):
            for q in range(n):
                assert np.array_equal(
                    table.as_dense_operator(p, q), brute_epq(space, p, q)
                )

    def test_entry_count(self):
        n, k = 6, 3
        table = SingleExcitationTable(StringSpace(n, k))
        # per string: k annihilations x (n - k + 1) creations
        assert table.n_entries == StringSpace(n, k).size * k * (n - k + 1)

    def test_diagonal_entries_present(self):
        table = SingleExcitationTable(StringSpace(4, 2))
        rows = table.rows_for_pq(1, 1)
        # E_11 acts diagonally on strings containing orbital 1
        assert rows.size == 3  # C(3,1) strings contain orbital 1
        assert np.all(table.sign[rows] == 1)
        assert np.array_equal(table.source[rows], table.target[rows])

    def test_commutator_identity(self):
        # [E_pq, E_rs] = delta_qr E_ps - delta_ps E_rq
        space = StringSpace(5, 2)
        table = SingleExcitationTable(space)
        rng = np.random.default_rng(0)
        for _ in range(6):
            p, q, r, s = rng.integers(0, 5, size=4)
            Epq = table.as_dense_operator(p, q)
            Ers = table.as_dense_operator(r, s)
            comm = Epq @ Ers - Ers @ Epq
            expected = np.zeros_like(comm)
            if q == r:
                expected += table.as_dense_operator(p, s)
            if p == s:
                expected -= table.as_dense_operator(r, q)
            assert np.allclose(comm, expected)

    def test_number_operator_sum(self):
        # sum_p E_pp = k * identity
        space = StringSpace(5, 3)
        table = SingleExcitationTable(space)
        total = sum(table.as_dense_operator(p, p) for p in range(5))
        assert np.allclose(total, 3 * np.eye(space.size))


class TestDoubleAnnihilationTable:
    def test_requires_two_electrons(self):
        with pytest.raises(ValueError):
            DoubleAnnihilationTable(StringSpace(4, 1))

    def test_entry_count(self):
        n, k = 6, 3
        table = DoubleAnnihilationTable(StringSpace(n, k))
        assert table.n_entries == StringSpace(n, k).size * k * (k - 1) // 2

    @pytest.mark.parametrize("n,k", [(4, 2), (5, 3), (6, 4)])
    def test_signs_match_operator_application(self, n, k):
        space = StringSpace(n, k)
        table = DoubleAnnihilationTable(space)
        red = table.reduced_space
        for e in range(table.n_entries):
            j = int(table.source[e])
            q, s = int(table.q[e]), int(table.s[e])
            assert q > s
            m1, s1 = apply_annihilation(int(space.masks[j]), q)
            m2, s2 = apply_annihilation(m1, s)
            assert red.index(m2) == int(table.target[e])
            assert s1 * s2 == int(table.sign[e])

    def test_pair_indexing(self):
        table = DoubleAnnihilationTable(StringSpace(5, 2))
        for e in range(table.n_entries):
            q, s = int(table.q[e]), int(table.s[e])
            assert int(table.pair[e]) == q * (q - 1) // 2 + s

    def test_unique_keys(self):
        # (pair, K) determines the source string uniquely - the property the
        # DGEMM gather relies on
        table = DoubleAnnihilationTable(StringSpace(6, 3))
        keys = table.pair * table.reduced_space.size + table.target
        assert len(np.unique(keys)) == table.n_entries

    def test_entries_source_major(self):
        table = DoubleAnnihilationTable(StringSpace(6, 3))
        assert np.all(np.diff(table.source) >= 0)


class TestSingleAnnihilationTable:
    def test_entry_count(self):
        table = SingleAnnihilationTable(StringSpace(5, 2))
        assert table.n_entries == 10 * 2

    def test_signs(self):
        space = StringSpace(5, 3)
        table = SingleAnnihilationTable(space)
        for e in range(table.n_entries):
            m, s = apply_annihilation(int(space.masks[table.source[e]]), int(table.orb[e]))
            assert s == int(table.sign[e])
            assert table.reduced_space.index(m) == int(table.target[e])

    def test_rows_for_orbital_partition(self):
        space = StringSpace(6, 2)
        table = SingleAnnihilationTable(space)
        total = sum(table.rows_for_orbital(p).size for p in range(6))
        assert total == table.n_entries

    def test_requires_one_electron(self):
        with pytest.raises(ValueError):
            SingleAnnihilationTable(StringSpace(4, 0))


class TestTableTruncation:
    """Every table's stored arrays are truncated to exactly n_entries."""

    @pytest.mark.parametrize("n,k", [(4, 2), (5, 3), (6, 1)])
    def test_arrays_match_n_entries(self, n, k):
        space = StringSpace(n, k)
        single = SingleExcitationTable(space)
        for name in ("source", "target", "p", "q", "sign"):
            assert len(getattr(single, name)) == single.n_entries
        ann = SingleAnnihilationTable(space)
        for name in ("source", "target", "orb", "sign"):
            assert len(getattr(ann, name)) == ann.n_entries
        if k >= 2:
            dbl = DoubleAnnihilationTable(space)
            for name in ("source", "target", "q", "s", "sign", "pair"):
                assert len(getattr(dbl, name)) == dbl.n_entries


class TestOrbitalBoundsValidation:
    """Out-of-range orbital indices raise ValueError naming the bound."""

    def test_rows_for_pq_rejects_out_of_range(self):
        table = SingleExcitationTable(StringSpace(5, 2))
        with pytest.raises(ValueError, match="p=5.*0 <= p < 5"):
            table.rows_for_pq(5, 0)
        with pytest.raises(ValueError, match="q=7.*0 <= q < 5"):
            table.rows_for_pq(0, 7)
        with pytest.raises(ValueError, match="p=-1"):
            table.rows_for_pq(-1, 0)
        with pytest.raises(ValueError, match="q=-2"):
            table.rows_for_pq(0, -2)

    def test_rows_for_orbital_rejects_out_of_range(self):
        table = SingleAnnihilationTable(StringSpace(4, 2))
        with pytest.raises(ValueError, match="p=4.*0 <= p < 4"):
            table.rows_for_orbital(4)
        with pytest.raises(ValueError, match="p=-1"):
            table.rows_for_orbital(-1)

    def test_in_range_still_works(self):
        table = SingleExcitationTable(StringSpace(4, 2))
        assert table.rows_for_pq(0, 0).size > 0
        ann = SingleAnnihilationTable(StringSpace(4, 2))
        assert ann.rows_for_orbital(3).size > 0


class TestVectorizedBuilders:
    """The vectorized table builders equal the Python-loop oracles bit for bit,
    including k=0/k=1 edge spaces and p-shell-sized spaces."""

    SPACES = [(3, 0), (3, 1), (3, 2), (3, 3), (4, 2), (5, 3), (6, 1), (6, 5), (7, 4)]

    @pytest.mark.parametrize("n,k", SPACES)
    def test_single_excitation_bit_for_bit(self, n, k):
        from repro.core.excitations import (
            _loop_single_excitation_arrays,
            _single_excitation_arrays,
        )

        space = StringSpace(n, k)
        vec = _single_excitation_arrays(space)
        loop = _loop_single_excitation_arrays(space)
        for a, b in zip(vec, loop):
            assert a.dtype == b.dtype
            assert np.array_equal(a, b)

    @pytest.mark.parametrize("n,k", [(n, k) for n, k in SPACES if k >= 1])
    def test_single_annihilation_bit_for_bit(self, n, k):
        from repro.core.excitations import (
            _loop_single_annihilation_arrays,
            _single_annihilation_arrays,
        )

        space = StringSpace(n, k)
        red = StringSpace(n, k - 1)
        vec = _single_annihilation_arrays(space, red)
        loop = _loop_single_annihilation_arrays(space, red)
        for a, b in zip(vec, loop):
            assert a.dtype == b.dtype
            assert np.array_equal(a, b)

    @pytest.mark.parametrize("n,k", [(n, k) for n, k in SPACES if k >= 2])
    def test_double_annihilation_bit_for_bit(self, n, k):
        from repro.core.excitations import (
            _double_annihilation_arrays,
            _loop_double_annihilation_arrays,
        )

        space = StringSpace(n, k)
        red = StringSpace(n, k - 2)
        vec = _double_annihilation_arrays(space, red)
        loop = _loop_double_annihilation_arrays(space, red)
        for a, b in zip(vec, loop):
            assert a.dtype == b.dtype
            assert np.array_equal(a, b)


class TestLinkIndexTables:
    """The plan's per-string link views against dense-operator oracles."""

    def _plan(self, n, na, nb, seed=7):
        from tests.helpers import make_random_problem
        from repro.core.plans import SigmaPlan

        return SigmaPlan.for_problem(make_random_problem(n, na, nb, seed=seed))

    def test_cached_and_zero_copy(self):
        plan = self._plan(5, 2, 2)
        links = plan.link_tables
        assert plan.link_tables is links  # cached
        # reshape views share memory with the flat plan arrays
        assert links.same_a.key.base is plan.same_a.key
        assert links.gather_b.source.base is plan.gather_b.source

    @pytest.mark.parametrize("n,na,nb", [(3, 1, 1), (3, 2, 1), (4, 2, 2), (5, 3, 1)])
    def test_singles_link_against_dense_operator(self, n, na, nb):
        """Row t of the scatter/gather link lists exactly the nonzeros of
        column blocks of every E_pq with target t (p-shell-sized spaces)."""
        plan = self._plan(n, na, nb)
        for link, table in (
            (plan.link_tables.scatter_a, plan.singles_a),
            (plan.link_tables.gather_b, plan.singles_b),
        ):
            space = table.space
            dense = {
                (p, q): table.as_dense_operator(p, q)
                for p in range(n)
                for q in range(n)
            }
            seen = 0
            for t in range(space.size):
                for src, pq, sgn in zip(link.source[t], link.pq[t], link.sign[t]):
                    p, q = int(pq) // n, int(pq) % n
                    assert dense[(p, q)][t, int(src)] == sgn
                    seen += 1
            # completeness: every nonzero of every E_pq appears exactly once
            assert seen == sum(np.count_nonzero(M) for M in dense.values())

    @pytest.mark.parametrize("n,na,nb", [(4, 2, 2), (5, 3, 2), (6, 4, 1)])
    def test_same_spin_link_against_annihilation_oracle(self, n, na, nb):
        from repro.core.hamiltonian import apply_annihilation

        plan = self._plan(n, na, nb)
        for link, space, splan in (
            (plan.link_tables.same_a, plan.problem.space_a, plan.same_a),
            (plan.link_tables.same_b, plan.problem.space_b, plan.same_b),
        ):
            if link is None:
                continue
            NK = splan.n_reduced
            red = StringSpace(n, space.k - 2)
            for j in range(space.size):
                for key, sgn in zip(link.key[j], link.sign[j]):
                    pair, tgt = int(key) // NK, int(key) % NK
                    # invert pair = q(q-1)/2 + s
                    q = 1
                    while (q + 1) * q // 2 <= pair:
                        q += 1
                    s = pair - q * (q - 1) // 2
                    m1, s1 = apply_annihilation(int(space.masks[j]), q)
                    m2, s2 = apply_annihilation(m1, s)
                    assert red.index(m2) == tgt
                    assert s1 * s2 == sgn
