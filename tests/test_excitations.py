"""Tests for excitation tables against brute-force operator application."""

import numpy as np
import pytest

from repro.core import DoubleAnnihilationTable, SingleExcitationTable, StringSpace
from repro.core.excitations import SingleAnnihilationTable
from repro.core.hamiltonian import apply_annihilation, apply_creation


def brute_epq(space: StringSpace, p: int, q: int) -> np.ndarray:
    """Dense E_pq = a+_p a_q built directly from operator application."""
    M = np.zeros((space.size, space.size))
    for j in range(space.size):
        m1, s1 = apply_annihilation(int(space.masks[j]), q)
        if s1 == 0:
            continue
        m2, s2 = apply_creation(m1, p)
        if s2 == 0:
            continue
        M[space.index(m2), j] = s1 * s2
    return M


class TestSingleExcitationTable:
    @pytest.mark.parametrize("n,k", [(4, 2), (5, 3), (6, 1), (5, 5)])
    def test_matches_brute_force(self, n, k):
        space = StringSpace(n, k)
        table = SingleExcitationTable(space)
        for p in range(n):
            for q in range(n):
                assert np.array_equal(
                    table.as_dense_operator(p, q), brute_epq(space, p, q)
                )

    def test_entry_count(self):
        n, k = 6, 3
        table = SingleExcitationTable(StringSpace(n, k))
        # per string: k annihilations x (n - k + 1) creations
        assert table.n_entries == StringSpace(n, k).size * k * (n - k + 1)

    def test_diagonal_entries_present(self):
        table = SingleExcitationTable(StringSpace(4, 2))
        rows = table.rows_for_pq(1, 1)
        # E_11 acts diagonally on strings containing orbital 1
        assert rows.size == 3  # C(3,1) strings contain orbital 1
        assert np.all(table.sign[rows] == 1)
        assert np.array_equal(table.source[rows], table.target[rows])

    def test_commutator_identity(self):
        # [E_pq, E_rs] = delta_qr E_ps - delta_ps E_rq
        space = StringSpace(5, 2)
        table = SingleExcitationTable(space)
        rng = np.random.default_rng(0)
        for _ in range(6):
            p, q, r, s = rng.integers(0, 5, size=4)
            Epq = table.as_dense_operator(p, q)
            Ers = table.as_dense_operator(r, s)
            comm = Epq @ Ers - Ers @ Epq
            expected = np.zeros_like(comm)
            if q == r:
                expected += table.as_dense_operator(p, s)
            if p == s:
                expected -= table.as_dense_operator(r, q)
            assert np.allclose(comm, expected)

    def test_number_operator_sum(self):
        # sum_p E_pp = k * identity
        space = StringSpace(5, 3)
        table = SingleExcitationTable(space)
        total = sum(table.as_dense_operator(p, p) for p in range(5))
        assert np.allclose(total, 3 * np.eye(space.size))


class TestDoubleAnnihilationTable:
    def test_requires_two_electrons(self):
        with pytest.raises(ValueError):
            DoubleAnnihilationTable(StringSpace(4, 1))

    def test_entry_count(self):
        n, k = 6, 3
        table = DoubleAnnihilationTable(StringSpace(n, k))
        assert table.n_entries == StringSpace(n, k).size * k * (k - 1) // 2

    @pytest.mark.parametrize("n,k", [(4, 2), (5, 3), (6, 4)])
    def test_signs_match_operator_application(self, n, k):
        space = StringSpace(n, k)
        table = DoubleAnnihilationTable(space)
        red = table.reduced_space
        for e in range(table.n_entries):
            j = int(table.source[e])
            q, s = int(table.q[e]), int(table.s[e])
            assert q > s
            m1, s1 = apply_annihilation(int(space.masks[j]), q)
            m2, s2 = apply_annihilation(m1, s)
            assert red.index(m2) == int(table.target[e])
            assert s1 * s2 == int(table.sign[e])

    def test_pair_indexing(self):
        table = DoubleAnnihilationTable(StringSpace(5, 2))
        for e in range(table.n_entries):
            q, s = int(table.q[e]), int(table.s[e])
            assert int(table.pair[e]) == q * (q - 1) // 2 + s

    def test_unique_keys(self):
        # (pair, K) determines the source string uniquely - the property the
        # DGEMM gather relies on
        table = DoubleAnnihilationTable(StringSpace(6, 3))
        keys = table.pair * table.reduced_space.size + table.target
        assert len(np.unique(keys)) == table.n_entries

    def test_entries_source_major(self):
        table = DoubleAnnihilationTable(StringSpace(6, 3))
        assert np.all(np.diff(table.source) >= 0)


class TestSingleAnnihilationTable:
    def test_entry_count(self):
        table = SingleAnnihilationTable(StringSpace(5, 2))
        assert table.n_entries == 10 * 2

    def test_signs(self):
        space = StringSpace(5, 3)
        table = SingleAnnihilationTable(space)
        for e in range(table.n_entries):
            m, s = apply_annihilation(int(space.masks[table.source[e]]), int(table.orb[e]))
            assert s == int(table.sign[e])
            assert table.reduced_space.index(m) == int(table.target[e])

    def test_rows_for_orbital_partition(self):
        space = StringSpace(6, 2)
        table = SingleAnnihilationTable(space)
        total = sum(table.rows_for_orbital(p).size for p in range(6))
        assert total == table.n_entries

    def test_requires_one_electron(self):
        with pytest.raises(ValueError):
            SingleAnnihilationTable(StringSpace(4, 0))
