"""Tests for molecular geometry handling."""

import numpy as np
import pytest

from repro.molecule import Molecule
from repro.molecule.geometry import ANGSTROM_TO_BOHR, Atom


class TestAtom:
    def test_atomic_number(self):
        assert Atom("O", (0, 0, 0)).Z == 8

    def test_frozen(self):
        a = Atom("H", (0, 0, 0))
        with pytest.raises(AttributeError):
            a.symbol = "He"


class TestMolecule:
    def test_electron_count_neutral(self, water):
        assert water.n_electrons == 10

    def test_electron_count_charged(self):
        mol = Molecule.from_atoms([("C", (0, 0, 0)), ("N", (0, 0, 2.2))], charge=1)
        assert mol.n_electrons == 12

    def test_alpha_beta_singlet(self, water):
        assert water.n_alpha == 5 and water.n_beta == 5

    def test_alpha_beta_triplet(self, oxygen_triplet):
        assert oxygen_triplet.n_alpha == 5
        assert oxygen_triplet.n_beta == 3

    def test_doublet(self):
        mol = Molecule.from_atoms([("H", (0, 0, 0))], multiplicity=2)
        assert (mol.n_alpha, mol.n_beta) == (1, 0)

    def test_inconsistent_multiplicity_rejected(self):
        with pytest.raises(ValueError):
            Molecule.from_atoms([("H", (0, 0, 0)), ("H", (0, 0, 1))], multiplicity=2)

    def test_zero_multiplicity_rejected(self):
        with pytest.raises(ValueError):
            Molecule.from_atoms([("H", (0, 0, 0))], multiplicity=0)

    def test_nuclear_repulsion_h2(self, h2):
        assert abs(h2.nuclear_repulsion() - 1.0 / 1.4) < 1e-12

    def test_nuclear_repulsion_scaling(self):
        mol = Molecule.from_atoms([("He", (0, 0, 0)), ("He", (0, 0, 2.0))])
        assert abs(mol.nuclear_repulsion() - 4.0 / 2.0) < 1e-12

    def test_coincident_atoms_raise(self):
        mol = Molecule.from_atoms([("H", (0, 0, 0)), ("H", (0, 0, 0))])
        with pytest.raises(ValueError):
            mol.nuclear_repulsion()

    def test_angstrom_conversion(self):
        mol = Molecule.from_atoms(
            [("H", (0, 0, 0)), ("H", (0, 0, 0.74))], unit="angstrom"
        )
        z = mol.coordinates()[1, 2]
        assert abs(z - 0.74 * ANGSTROM_TO_BOHR) < 1e-12

    def test_charges_list(self, water):
        charges = water.charges()
        assert [z for z, _ in charges] == [8.0, 1.0, 1.0]

    def test_basis_builder(self, water):
        assert water.basis("sto-3g").nbf == 7

    def test_repr(self, water):
        assert "10 electrons" in repr(water)
