"""Tests for RHF / ROHF and the MO transformation."""

import numpy as np
import pytest

from repro.molecule import Molecule, PointGroup, ao_representation
from repro.scf import compute_ao_integrals, freeze_core, rhf, rohf, transform
from repro.scf.rhf import DIIS


class TestRHF:
    def test_h2_sto3g_energy(self, h2_scf):
        # Szabo & Ostlund: E(RHF/STO-3G, R=1.4) = -1.1167 Eh
        assert abs(h2_scf.energy - (-1.11671)) < 2e-4

    def test_h2_converged(self, h2_scf):
        assert h2_scf.converged
        assert h2_scf.n_iterations < 30

    def test_water_sto3g_energy_range(self, water_scf):
        # literature HF/STO-3G water near equilibrium: about -74.96 Eh
        assert -75.05 < water_scf.energy < -74.85

    def test_orbitals_orthonormal(self, water_ao, water_scf):
        C, S = water_scf.mo_coeff, water_ao.S
        assert np.allclose(C.T @ S @ C, np.eye(C.shape[1]), atol=1e-8)

    def test_density_idempotent(self, water_ao, water_scf):
        # P S P = 2 P for the RHF total density P
        P, S = water_scf.density, water_ao.S
        assert np.allclose(P @ S @ P, 2 * P, atol=1e-6)

    def test_density_trace_is_electron_count(self, water, water_ao, water_scf):
        assert abs(np.trace(water_scf.density @ water_ao.S) - water.n_electrons) < 1e-8

    def test_virial_ratio(self, h2, h2_ao, h2_scf):
        from repro.integrals import kinetic

        T = kinetic(h2.basis("sto-3g"))
        ekin = float(np.sum(h2_scf.density * T))
        ratio = -(h2_scf.energy - ekin) / ekin
        assert abs(ratio - 2.0) < 0.1  # near equilibrium

    def test_aufbau_energy_ordering(self, water_scf):
        assert np.all(np.diff(water_scf.mo_energy) > -1e-10)

    def test_open_shell_rejected(self, oxygen_triplet):
        ao = compute_ao_integrals(oxygen_triplet, "sto-3g")
        with pytest.raises(ValueError):
            rhf(oxygen_triplet, ao)

    def test_no_diis_still_converges(self, h2, h2_ao):
        res = rhf(h2, h2_ao, diis=False)
        assert res.converged
        assert abs(res.energy - (-1.11671)) < 2e-4


class TestDIIS:
    def test_first_update_passthrough(self):
        diis = DIIS()
        F = np.eye(2)
        D = 0.5 * np.eye(2)
        S = np.eye(2)
        Fout, err = diis.update(F, D, S, np.eye(2))
        assert np.allclose(Fout, F)
        assert err >= 0

    def test_window_limit(self):
        diis = DIIS(max_vectors=3)
        rng = np.random.default_rng(0)
        for _ in range(6):
            F = rng.standard_normal((3, 3))
            D = rng.standard_normal((3, 3))
            diis.update(F, D, np.eye(3), np.eye(3))
        assert len(diis._focks) == 3


class TestROHF:
    def test_oxygen_triplet_energy(self, oxygen_triplet):
        ao = compute_ao_integrals(oxygen_triplet, "sto-3g")
        res = rohf(oxygen_triplet, ao)
        assert res.converged
        # ROHF/STO-3G O(3P) is around -73.8 Eh
        assert -74.5 < res.energy < -73.0

    def test_rohf_above_core_only_bound(self, oxygen_triplet):
        # electron repulsion is positive, so E(ROHF) must exceed the
        # repulsion-free bound from filling core-Hamiltonian eigenvalues
        ao = compute_ao_integrals(oxygen_triplet, "sto-3g")
        res = rohf(oxygen_triplet, ao)
        eps = np.linalg.eigvalsh(ao.hcore)
        core_energy = 2 * eps[:3].sum() + eps[3] + eps[4]
        assert res.energy > core_energy

    def test_rohf_orbitals_orthonormal(self, oxygen_triplet):
        ao = compute_ao_integrals(oxygen_triplet, "sto-3g")
        res = rohf(oxygen_triplet, ao)
        C = res.mo_coeff
        assert np.allclose(C.T @ ao.S @ C, np.eye(C.shape[1]), atol=1e-8)

    def test_rohf_requires_high_spin(self, water, water_ao):
        # singlet still runs through rohf path (na == nb) and matches rhf
        res = rohf(water, water_ao)
        ref = rhf(water, water_ao)
        assert abs(res.energy - ref.energy) < 1e-6

    def test_symmetry_averaged_rohf(self, oxygen_triplet):
        ao = compute_ao_integrals(oxygen_triplet, "sto-3g")
        group = PointGroup.get("D2h")
        basis = oxygen_triplet.basis("sto-3g")
        ops = [
            ao_representation(basis, oxygen_triplet.coordinates(), g)
            for g in group.ops
        ]
        res = rohf(oxygen_triplet, ao, symmetry_ops=ops)
        assert res.converged


class TestMOTransform:
    def test_h_symmetric(self, water_mo):
        assert np.allclose(water_mo.h, water_mo.h.T, atol=1e-10)

    def test_g_symmetries(self, water_mo):
        water_mo.validate_symmetries()

    def test_hf_energy_from_mo_integrals(self, water, water_mo, water_scf):
        # E_HF = 2 sum_i h_ii + sum_ij (2 (ii|jj) - (ij|ji)) + e_core
        nocc = water.n_electrons // 2
        o = slice(0, nocc)
        e = 2 * np.trace(water_mo.h[o, o])
        e += 2 * np.einsum("iijj->", water_mo.g[o, o, o, o])
        e -= np.einsum("ijji->", water_mo.g[o, o, o, o])
        assert abs(e + water_mo.e_core - water_scf.energy) < 1e-8

    def test_dimension_mismatch_rejected(self):
        from repro.scf.mo import MOIntegrals

        with pytest.raises(ValueError):
            MOIntegrals(h=np.zeros((2, 2)), g=np.zeros((3,) * 4), e_core=0.0, n_orbitals=2)


class TestFrozenCore:
    def test_identity_when_nothing_frozen(self, water_mo):
        assert freeze_core(water_mo, 0) is water_mo

    def test_dimensions(self, water_mo):
        fc = freeze_core(water_mo, 1)
        assert fc.n_orbitals == water_mo.n_orbitals - 1
        assert fc.g.shape == (6, 6, 6, 6)

    def test_hf_energy_preserved(self, water, water_mo, water_scf):
        # freezing occupied orbitals must preserve the HF determinant energy
        fc = freeze_core(water_mo, 2)
        nocc = water.n_electrons // 2 - 2
        o = slice(0, nocc)
        e = 2 * np.trace(fc.h[o, o])
        e += 2 * np.einsum("iijj->", fc.g[o, o, o, o])
        e -= np.einsum("ijji->", fc.g[o, o, o, o])
        assert abs(e + fc.e_core - water_scf.energy) < 1e-8

    def test_invalid_counts_rejected(self, water_mo):
        with pytest.raises(ValueError):
            freeze_core(water_mo, -1)
        with pytest.raises(ValueError):
            freeze_core(water_mo, 7)
        with pytest.raises(ValueError):
            freeze_core(water_mo, 1, n_active=7)

    def test_active_window(self, water_mo):
        fc = freeze_core(water_mo, 1, n_active=4)
        assert fc.n_orbitals == 4
