"""End-to-end tests of ``repro.service``: the FCI job server.

Covers the acceptance criteria of the service tentpole:

* two identical submissions dedupe onto one solve (content-addressed keys),
* a preempted-then-resumed job reproduces the uninterrupted energy to
  1e-10 (observed bitwise-equal),
* a result-cache hit and a forced warm re-solve (plan-cache hit) are
  bitwise-identical to the cold solve on the golden-energy problems,
* the queue rejects on backpressure and honors priority tiers,
* a job killed mid-solve by injected checkpoint I/O errors is recovered
  by a *restarted* service and resumed to the uninterrupted answer.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.service import (
    FCIService,
    JobQueue,
    JobRecord,
    JobSpec,
    JobState,
    JobStateError,
    QueueFullError,
)

GOLDEN_H2 = -1.137275943785  # tests/test_golden_energies.py, 1e-8
GOLDEN_H2O = -75.012586552381


def spec_for(mol, **options) -> JobSpec:
    return JobSpec.from_molecule(mol, "sto-3g", **options)


@pytest.fixture()
def workdir(tmp_path):
    return tmp_path / "svc"


@pytest.fixture(scope="module")
def water_reference(water):
    """Uninterrupted service solve of water: the resume/crash baseline."""
    import tempfile

    with tempfile.TemporaryDirectory() as d:
        with FCIService(d, max_workers=1) as svc:
            job = svc.submit(molecule=water, basis="sto-3g")
            result = svc.result(job.key, timeout=300)
            vector = np.array(svc.vector(job.key))
    return result["energy"], vector


# -- job model ----------------------------------------------------------------


class TestJobSpec:
    def test_job_key_is_stable_and_canonical(self, h2):
        a = spec_for(h2)
        b = JobSpec.from_dict(a.to_dict())
        assert a == b
        assert a.job_key == b.job_key
        assert a.space_key == b.space_key

    def test_label_does_not_affect_identity(self, h2):
        a = spec_for(h2)
        b = JobSpec.from_dict({**a.to_dict(), "label": "something else"})
        assert a.job_key == b.job_key

    def test_solver_config_changes_job_key_but_not_space_key(self, h2):
        a = spec_for(h2, method="auto")
        b = spec_for(h2, method="davidson")
        assert a.job_key != b.job_key
        assert a.space_key == b.space_key

    def test_geometry_changes_space_key(self, h2, water):
        assert spec_for(h2).space_key != spec_for(water).space_key

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown job spec fields"):
            JobSpec.from_dict({"atoms": [["H", [0, 0, 0]]], "n_oops": 3})

    def test_empty_atoms_rejected(self):
        with pytest.raises(ValueError, match="atoms"):
            JobSpec.from_dict({"atoms": []})

    def test_parallel_options_are_frozen_and_round_trip(self, h2):
        a = spec_for(h2, parallel={"backend": "shm", "n_workers": 2})
        assert isinstance(a.parallel, tuple)
        assert a.solver_kwargs()["parallel"] == {"backend": "shm", "n_workers": 2}
        b = JobSpec.from_dict(a.to_dict())
        assert a.job_key == b.job_key


class TestJobLifecycle:
    def test_illegal_transition_raises(self, h2):
        rec = JobRecord(key="k", spec=spec_for(h2))
        with pytest.raises(JobStateError):
            rec.transition(JobState.COMPLETED)  # queued cannot jump to completed

    def test_resume_clears_interruption_state(self, h2):
        rec = JobRecord(key="k", spec=spec_for(h2))
        rec.transition(JobState.RUNNING)
        rec.cancel_event.set()
        rec.error = "preempted"
        rec.transition(JobState.PREEMPTED)
        assert rec.done.is_set()
        rec.transition(JobState.QUEUED)
        assert not rec.done.is_set()
        assert not rec.cancel_event.is_set()
        assert rec.error is None


class TestJobQueue:
    def test_priority_then_fifo_order(self):
        q = JobQueue(maxsize=10)
        q.push("batch-1", 2)
        q.push("high-1", 0)
        q.push("normal-1", 1)
        q.push("high-2", 0)
        assert [q.pop() for _ in range(4)] == ["high-1", "high-2", "normal-1", "batch-1"]

    def test_backpressure_raises_queue_full(self):
        q = JobQueue(maxsize=2)
        q.push("a", 1)
        q.push("b", 1)
        with pytest.raises(QueueFullError):
            q.push("c", 1)

    def test_remove_and_timeout_pop(self):
        q = JobQueue(maxsize=4)
        q.push("a", 1)
        assert q.remove("a")
        assert not q.remove("a")
        assert q.pop(timeout=0.01) is None


# -- the service --------------------------------------------------------------


class TestServiceSolves:
    def test_submit_solves_golden_energy(self, workdir, h2):
        with FCIService(workdir, max_workers=1) as svc:
            job = svc.submit(molecule=h2, basis="sto-3g")
            result = svc.result(job.key, timeout=300)
            assert abs(result["energy"] - GOLDEN_H2) < 1e-8
            assert result["converged"]
            # per-iteration telemetry streamed into the record and onto disk
            events = svc.iterations(job.key)
            assert events and {"energy", "residual_norm"} <= set(events[0])
            jsonl = svc.executor.telemetry_path(job.key)
            lines = [json.loads(ln) for ln in open(jsonl) if ln.strip()]
            assert len(lines) == len(events)
            # the journal survives on disk
            assert os.path.exists(svc._journal_path(job.key))

    def test_identical_submissions_dedupe_to_one_solve(self, workdir, water):
        svc = FCIService(workdir, max_workers=2, autostart=False)
        try:
            first = svc.submit(molecule=water, basis="sto-3g")
            second = svc.submit(molecule=water, basis="sto-3g")
            assert second is first
            assert first.deduped == 1
            svc.start()
            result = svc.result(first.key, timeout=300)
            assert abs(result["energy"] - GOLDEN_H2O) < 1e-8
            assert svc.executor.solves == 1  # one solve for two submissions
        finally:
            svc.close()

    def test_result_cache_hit_and_warm_resolve_are_bitwise_identical(
        self, workdir, h2
    ):
        with FCIService(workdir, max_workers=1) as svc:
            job = svc.submit(molecule=h2, basis="sto-3g")
            cold = svc.result(job.key, timeout=300)
            cold_vec = np.array(svc.vector(job.key))

            # resubmission: served from the result cache, no new solve
            again = svc.submit(molecule=h2, basis="sto-3g")
            assert again.cache_hit
            assert again.result["energy"] == cold["energy"]  # bitwise
            assert svc.executor.solves == 1

            # force=True re-solves on the cached workspace (plan-cache hit):
            # the warm solve must be bitwise-identical to the cold one
            forced = svc.submit(molecule=h2, basis="sto-3g", force=True)
            warm = svc.result(forced.key, timeout=300)
            assert svc.executor.solves == 2
            assert warm["workspace_hit"] is True
            assert warm["energy"] == cold["energy"]  # bitwise
            assert np.array_equal(svc.vector(job.key), cold_vec)  # bitwise

    def test_workspace_shared_across_solver_configs(self, workdir, h2):
        with FCIService(workdir, max_workers=1) as svc:
            auto = svc.submit(molecule=h2, basis="sto-3g", method="auto")
            dav = svc.submit(molecule=h2, basis="sto-3g", method="davidson")
            assert auto.key != dav.key
            e_auto = svc.result(auto.key, timeout=300)["energy"]
            res_dav = svc.result(dav.key, timeout=300)
            assert res_dav["workspace_hit"] is True  # same space digest
            assert abs(e_auto - res_dav["energy"]) < 1e-8
            assert svc.cache.stats()["workspace_hits"] >= 1


class TestPreemptionAndResume:
    def test_preempted_then_resumed_matches_uninterrupted(
        self, workdir, water, water_reference
    ):
        e_ref, v_ref = water_reference
        with FCIService(workdir, max_workers=1) as svc:
            job = svc.submit(molecule=water, basis="sto-3g", preempt_after=3)
            rec = svc.wait(job.key, timeout=300)
            assert rec.state == JobState.PREEMPTED
            status = svc.status(job.key)
            assert status["checkpoint"]["iteration"] == 3
            svc.resume(job.key)
            result = svc.result(job.key, timeout=300)
            assert abs(result["energy"] - e_ref) <= 1e-10
            assert np.array_equal(svc.vector(job.key), v_ref)

    def test_timeout_then_resume_without_budget(self, workdir, water, water_reference):
        e_ref, _ = water_reference
        with FCIService(workdir, max_workers=1) as svc:
            # a zero budget trips at the very first iteration checkpoint
            job = svc.submit(molecule=water, basis="sto-3g", timeout=0.0)
            rec = svc.wait(job.key, timeout=300)
            assert rec.state == JobState.TIMED_OUT
            svc.resume(job.key, timeout=None)  # lift the budget for the retry
            result = svc.result(job.key, timeout=300)
            assert abs(result["energy"] - e_ref) <= 1e-10

    def test_cancel_queued_then_resume(self, workdir, h2):
        svc = FCIService(workdir, max_workers=1, autostart=False)
        try:
            job = svc.submit(molecule=h2, basis="sto-3g")
            assert svc.cancel(job.key) == JobState.CANCELLED
            svc.start()
            svc.resume(job.key)
            assert abs(svc.result(job.key, timeout=300)["energy"] - GOLDEN_H2) < 1e-8
        finally:
            svc.close()

    def test_stop_preempts_and_restart_continues(self, workdir, water, water_reference):
        e_ref, _ = water_reference
        svc = FCIService(workdir, max_workers=1)
        try:
            job = svc.submit(molecule=water, basis="sto-3g", preempt_after=2)
            svc.wait(job.key, timeout=300)
            svc.stop()  # fleet down; queue refuses pushes while stopped
            svc.start()  # ...and reopens on restart
            svc.resume(job.key)
            assert abs(svc.result(job.key, timeout=300)["energy"] - e_ref) <= 1e-10
        finally:
            svc.close()


class TestSchedulingPolicies:
    def test_priority_tiers_order_execution(self, workdir, h2, heh_plus, water):
        svc = FCIService(workdir, max_workers=1, autostart=False)
        try:
            batch = svc.submit(molecule=h2, basis="sto-3g", priority="batch")
            high = svc.submit(molecule=water, basis="sto-3g", priority="high")
            normal = svc.submit(molecule=heh_plus, basis="sto-3g", priority="normal")
            svc.start()
            for rec in (batch, high, normal):
                svc.wait(rec.key, timeout=300)
            assert svc.scheduler.execution_order == [high.key, normal.key, batch.key]
        finally:
            svc.close()

    def test_queue_full_rejects_submission(self, workdir, h2, water):
        svc = FCIService(workdir, max_workers=1, queue_size=1, autostart=False)
        try:
            kept = svc.submit(molecule=h2, basis="sto-3g")
            with pytest.raises(QueueFullError):
                svc.submit(molecule=water, basis="sto-3g")
            # the rejected job leaves no record behind; the first survives
            assert [r["key"] for r in svc.jobs()] == [kept.key]
            svc.start()
            assert abs(svc.result(kept.key, timeout=300)["energy"] - GOLDEN_H2) < 1e-8
        finally:
            svc.close()

    def test_invalid_specs_and_keys_fail_fast(self, workdir, h2):
        with FCIService(workdir, max_workers=1) as svc:
            with pytest.raises(ValueError, match="method"):
                svc.submit(molecule=h2, basis="sto-3g", method="nope")
            with pytest.raises(ValueError, match="algorithm|kernel"):
                svc.submit(molecule=h2, basis="sto-3g", algorithm="nope")
            with pytest.raises(ValueError, match="priority"):
                svc.submit(molecule=h2, basis="sto-3g", priority="sometime")
            with pytest.raises(KeyError):
                svc.status("not-a-job")

    def test_stats_shape(self, workdir, h2):
        with FCIService(workdir, max_workers=1) as svc:
            job = svc.submit(molecule=h2, basis="sto-3g")
            svc.wait(job.key, timeout=300)
            stats = svc.stats()
            assert stats["jobs"] == {JobState.COMPLETED: 1}
            assert stats["solves_executed"] == 1
            assert "shm" in stats["backends_available"]
            assert stats["cache"]["workspaces"] == 1


class TestDurability:
    def test_restart_recovers_journaled_jobs(self, workdir, water, water_reference):
        e_ref, _ = water_reference
        # a service that dies with the job still queued (never stopped cleanly)
        svc1 = FCIService(workdir, max_workers=1, autostart=False)
        job = svc1.submit(molecule=water, basis="sto-3g")
        del svc1  # no stop(): simulates the process dying

        svc2 = FCIService(workdir, max_workers=1)
        try:
            rec = svc2.get(job.key)
            assert rec.state == JobState.PREEMPTED
            assert rec.error == "server restarted"
            svc2.resume(job.key)
            assert abs(svc2.result(job.key, timeout=300)["energy"] - e_ref) <= 1e-10
        finally:
            svc2.close()

    def test_crash_on_injected_io_error_then_restart_and_resume(
        self, workdir, water, water_reference
    ):
        """The satellite crash-resume drill, through the full service path.

        Seeded checkpoint I/O faults (repro.faults) kill the solve mid-run
        after at least one good checkpoint; a *new* service instance on the
        same workdir adopts the failed job and resumes it from the surviving
        checkpoint to the uninterrupted answer.
        """
        e_ref, v_ref = water_reference
        injector = FaultInjector(FaultPlan(io_error=0.3, seed=0))
        svc1 = FCIService(workdir, max_workers=1, checkpoint_faults=injector)
        try:
            job = svc1.submit(molecule=water, basis="sto-3g")
            rec = svc1.wait(job.key, timeout=300)
            assert rec.state == JobState.FAILED
            assert "I/O error" in rec.error
            # the crash left a durable earlier checkpoint behind
            ckpt = svc1.executor.checkpoint_path(job.key)
            assert os.path.exists(ckpt)
            assert injector.counts().get("faults.injected.io_error", 0) >= 1
        finally:
            svc1.close()

        # restart: a fresh, fault-free service on the same durable state
        svc2 = FCIService(workdir, max_workers=1)
        try:
            assert svc2.get(job.key).state == JobState.FAILED
            svc2.resume(job.key)
            result = svc2.result(job.key, timeout=300)
            assert abs(result["energy"] - e_ref) <= 1e-10
            assert np.array_equal(svc2.vector(job.key), v_ref)
        finally:
            svc2.close()
