"""Tests for multipole integrals and CI dipole moments."""

import numpy as np
import pytest

from repro import FCISolver, Molecule
from repro.core import CIProblem, dipole_moment
from repro.integrals.multipole import dipole as dipole_integrals
from repro.scf import freeze_core


class TestDipoleIntegrals:
    def test_symmetric(self, water):
        D = dipole_integrals(water.basis("sto-3g"))
        for c in range(3):
            assert np.allclose(D[c], D[c].T, atol=1e-12)

    def test_single_gaussian_centered(self):
        # <s| r - A |s> = 0 for a gaussian centered at A with origin at A
        from repro.basis import BasisSet, Shell

        basis = BasisSet([Shell(0, [0.8], [1.0], np.array([0.5, -0.3, 1.1]))])
        D = dipole_integrals(basis, origin=(0.5, -0.3, 1.1))
        assert np.allclose(D, 0.0, atol=1e-13)

    def test_origin_shift_identity(self, h2):
        # <mu| r - C |nu> = <mu| r |nu> - C S
        from repro.integrals import overlap

        basis = h2.basis("sto-3g")
        S = overlap(basis)
        D0 = dipole_integrals(basis, origin=(0, 0, 0))
        C = np.array([0.3, -0.7, 1.9])
        DC = dipole_integrals(basis, origin=C)
        for c in range(3):
            assert np.allclose(DC[c], D0[c] - C[c] * S, atol=1e-12)

    def test_sp_block_values(self):
        # <s|x|px> on one center = 1/(2 sqrt(a)) for normalized primitives
        from repro.basis import BasisSet, Shell

        a = 1.3
        basis = BasisSet(
            [Shell(0, [a], [1.0], np.zeros(3)), Shell(1, [a], [1.0], np.zeros(3))]
        )
        D = dipole_integrals(basis)
        ref = 1.0 / (2.0 * np.sqrt(a))
        assert abs(D[0, 0, 1] - ref) < 1e-12  # x with px
        assert abs(D[1, 0, 2] - ref) < 1e-12  # y with py
        assert abs(D[0, 0, 2]) < 1e-13  # x with py vanishes


class TestCIDipole:
    def test_water_fci_dipole(self, water):
        res = FCISolver(water, "sto-3g", frozen_core=1).run()
        mu = dipole_moment(
            water, "sto-3g", res.scf.mo_coeff, res.problem, res.vector, n_frozen=1
        )
        # symmetry: dipole along the C2 (z) axis only
        assert abs(mu[0]) < 1e-8 and abs(mu[1]) < 1e-8
        # STO-3G water dipole magnitude ~0.6-0.7 a.u.
        assert 0.4 < abs(mu[2]) < 0.9

    def test_homonuclear_dipole_vanishes(self, h2):
        res = FCISolver(h2, "sto-3g").run()
        mu = dipole_moment(h2, "sto-3g", res.scf.mo_coeff, res.problem, res.vector)
        assert np.linalg.norm(mu) < 1e-8

    def test_charge_translation_consistency(self):
        # for a neutral molecule the dipole is origin-independent: shift the
        # whole molecule and the dipole must not change
        def build(shift):
            return Molecule.from_atoms(
                [
                    ("O", (0.0, 0.0, 0.2217 + shift)),
                    ("H", (0.0, 1.4309, -0.8867 + shift)),
                    ("H", (0.0, -1.4309, -0.8867 + shift)),
                ]
            )

        mus = []
        for shift in [0.0, 3.0]:
            mol = build(shift)
            res = FCISolver(mol, "sto-3g", frozen_core=1).run()
            mus.append(
                dipole_moment(
                    mol, "sto-3g", res.scf.mo_coeff, res.problem, res.vector, 1
                )
            )
        assert np.allclose(mus[0], mus[1], atol=1e-6)

    def test_fci_dipole_differs_from_scf(self, water):
        # electron correlation changes the dipole (slightly, for water)
        res = FCISolver(water, "sto-3g", frozen_core=1).run()
        mu_fci = dipole_moment(
            water, "sto-3g", res.scf.mo_coeff, res.problem, res.vector, 1
        )
        hf = np.zeros(res.problem.shape)
        hf[0, 0] = 1.0
        mu_hf = dipole_moment(water, "sto-3g", res.scf.mo_coeff, res.problem, hf, 1)
        assert 1e-4 < abs(mu_fci[2] - mu_hf[2]) < 0.2
