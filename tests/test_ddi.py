"""Tests for the DDI distributed-array layer."""

import numpy as np
import pytest

from repro.x1 import DDIArray, DynamicLoadBalancer, Engine, SymmetricHeap, X1Config
from repro.x1.ddi import block_ranges


class TestBlockRanges:
    def test_covers_everything(self):
        for n, p in [(10, 3), (7, 7), (5, 8), (100, 13)]:
            ranges = block_ranges(n, p)
            assert len(ranges) == p
            assert ranges[0][0] == 0
            assert ranges[-1][1] == n
            for (a, b), (c, d) in zip(ranges, ranges[1:]):
                assert b == c

    def test_near_even(self):
        sizes = [hi - lo for lo, hi in block_ranges(100, 7)]
        assert max(sizes) - min(sizes) <= 1


class TestDDIArray:
    def setup_method(self):
        self.cfg = X1Config(n_msps=4)
        self.heap = SymmetricHeap(4)
        self.A = DDIArray(self.heap, "A", 10, 3, msps_per_node=4)
        full = np.arange(30, dtype=float).reshape(10, 3)
        for r, (lo, hi) in enumerate(self.A.ranges):
            self.A.set_local(r, full[lo:hi])
        self.full = full

    def run(self, prog):
        eng = Engine(self.cfg, self.heap)
        eng.run([prog] * 4)
        return eng

    def test_owner_of(self):
        owners = [self.A.owner_of(r) for r in range(10)]
        assert owners == sorted(owners)
        assert owners[0] == 0 and owners[-1] == 3

    def test_get_rows_arbitrary_order(self):
        got = {}

        def prog(proc, h):
            if proc.rank == 2:
                rows = np.array([9, 0, 4, 4, 7])
                got["data"] = yield from self.A.iget_rows(proc, rows)
            else:
                yield proc.compute(0.0)

        self.run(prog)
        assert np.allclose(got["data"], self.full[[9, 0, 4, 4, 7]])

    def test_acc_rows_accumulates(self):
        def prog(proc, h):
            data = np.full((2, 3), float(proc.rank + 1))
            yield from self.A.iacc_rows(proc, np.array([0, 9]), data)

        self.run(prog)
        # every rank added rank+1 to rows 0 and 9: total += 1+2+3+4 = 10
        assert np.allclose(self.heap.segment("A", 0)[0], self.full[0] + 10)
        blk3 = self.heap.segment("A", 3)
        assert np.allclose(blk3[-1], self.full[9] + 10)

    def test_col_block_roundtrip(self):
        got = {}

        def prog(proc, h):
            if proc.rank == 1:
                got["cols"] = yield from self.A.iget_col_block(proc, 1, 3)
            else:
                yield proc.compute(0.0)

        self.run(prog)
        assert np.allclose(got["cols"], self.full[:, 1:3])

    def test_acc_col_block(self):
        def prog(proc, h):
            if proc.rank == 0:
                yield from self.A.iacc_col_block(proc, 0, 1, np.ones((10, 1)))
            else:
                yield proc.compute(0.0)

        self.run(prog)
        assembled = np.vstack(
            [self.heap.segment("A", r) for r in range(4)]
        )
        assert np.allclose(assembled[:, 0], self.full[:, 0] + 1)
        assert np.allclose(assembled[:, 1:], self.full[:, 1:])

    def test_trace_mode_charges_bytes(self):
        heap = SymmetricHeap(4)
        B = DDIArray(heap, "B", 100, 5, numeric=False)

        def prog(proc, h):
            if proc.rank == 0:
                out = yield from B.iget_rows(proc, np.arange(50))
                assert out is None
            else:
                yield proc.compute(0.0)

        eng = Engine(self.cfg, heap)
        eng.run([prog] * 4)
        assert eng.stats[0].bytes_received == 50 * 5 * 8


class TestDLB:
    def test_tasks_unique_and_complete(self):
        cfg = X1Config(n_msps=5)
        heap = SymmetricHeap(5)
        dlb = DynamicLoadBalancer(heap)
        taken = []

        def prog(proc, h):
            while True:
                t = yield from dlb.inext(proc)
                if t >= 13:
                    break
                taken.append(t)
                yield proc.compute(0.001)

        Engine(cfg, heap).run([prog] * 5)
        assert sorted(taken) == list(range(13))

    def test_reset(self):
        heap = SymmetricHeap(2)
        dlb = DynamicLoadBalancer(heap)
        heap.segment(dlb.name, 0)[0] = 55
        dlb.reset()
        assert heap.segment(dlb.name, 0)[0] == 0

    def test_counter_contention_costs_time(self):
        # hammering the DLB server must take at least n * atomic_overhead
        cfg = X1Config(n_msps=4)
        heap = SymmetricHeap(4)
        dlb = DynamicLoadBalancer(heap)

        def prog(proc, h):
            for _ in range(50):
                yield from dlb.inext(proc)

        eng = Engine(cfg, heap).run([prog] * 4)
        elapsed = max(s.finish_time for s in eng)
        # 150 remote fadds serialize at rank 0's memory port (rank 0's own
        # 50 are local and uncontended)
        assert elapsed >= 150 * X1Config().atomic_overhead * 0.9
