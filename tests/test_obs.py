"""Tests for repro.obs: metrics, tracing, accounting, and solver telemetry."""

from __future__ import annotations

import importlib.util
import json
import pathlib
import threading

import numpy as np
import pytest

from repro import FCISolver, Telemetry
from repro.core import CIProblem, sigma_dgemm, sigma_moc
from repro.core.sigma_dgemm import SigmaCounters
from repro.obs import (
    ChromeTracer,
    MetricsRegistry,
    NullTracer,
    account_parallel_report,
    account_sigma_dgemm,
    dgemm_mixed_spin_flops,
    dgemm_same_spin_flops,
    get_registry,
    gflops_rate,
    set_registry,
    NULL_TELEMETRY,
)
from repro.parallel import ParallelSigma
from repro.x1 import X1Config
from tests.conftest import make_random_mo


# -- metrics registry ---------------------------------------------------------


class TestMetrics:
    def test_counter_semantics(self):
        reg = MetricsRegistry()
        c = reg.counter("a.b")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        assert reg.counter("a.b") is c  # same object on re-request
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_semantics(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(4.0)
        g.inc()
        g.dec(2.0)
        assert g.value == 3.0

    def test_histogram_welford_stats(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        data = [1.0, 2.0, 4.0, 8.0, 16.0]
        for x in data:
            h.observe(x)
        assert h.count == len(data)
        assert h.sum == sum(data)
        assert h.min == 1.0 and h.max == 16.0
        assert h.mean == pytest.approx(np.mean(data))
        assert h.std == pytest.approx(np.std(data))

    def test_timer_context_manager(self):
        reg = MetricsRegistry()
        t = reg.timer("t")
        with t.time():
            pass
        t.observe(0.5)  # explicit (virtual) duration
        assert t.count == 2
        assert t.max >= 0.5

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_timer_satisfies_histogram(self):
        reg = MetricsRegistry()
        t = reg.timer("dur")
        assert reg.histogram("dur") is t  # a Timer is-a Histogram

    def test_series_records(self):
        reg = MetricsRegistry()
        s = reg.series("iters")
        s.append(iteration=1, energy=-1.0)
        s.append(iteration=2, energy=-1.1)
        assert len(s) == 2
        assert s.records[1]["energy"] == -1.1

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(3.0)
        reg.series("s").append(k="v")
        doc = json.loads(reg.to_json())
        assert doc["c"] == {"kind": "counter", "value": 2.0}
        assert doc["g"]["value"] == 1.5
        assert doc["h"]["count"] == 1
        assert doc["s"]["records"] == [{"k": "v"}]
        assert sorted(reg) == ["c", "g", "h", "s"]

    def test_counter_thread_safety(self):
        reg = MetricsRegistry()
        c = reg.counter("n")

        def worker():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000

    def test_global_registry_singleton(self):
        old = set_registry(None)
        try:
            r1 = get_registry()
            assert get_registry() is r1
            mine = MetricsRegistry()
            assert set_registry(mine) is r1
            assert get_registry() is mine
        finally:
            set_registry(old)


# -- Chrome tracer ------------------------------------------------------------


class TestChromeTracer:
    def test_nesting_and_unmatched_end(self):
        tr = ChromeTracer()
        tr.begin(0, "outer", 0.0)
        tr.begin(0, "inner", 1.0)
        tr.end(0, 2.0)
        tr.end(0, 3.0)
        tr.end(0, 4.0)  # unmatched: must be tolerated
        names = [e["name"] for e in tr.events(0)]
        assert names == ["outer", "inner", "inner", "outer"]

    def test_min_duration_filter(self):
        tr = ChromeTracer(min_duration=1e-3)
        tr.complete(0, "tiny", "op", 0.0, 1e-6)
        tr.complete(0, "big", "op", 0.0, 1.0)
        assert tr.span_names() == {"big"}
        assert tr.total_duration("big") == pytest.approx(1.0)

    def test_export_structure(self, tmp_path):
        tr = ChromeTracer(process_name="test machine")
        tr.complete(1, "work", "op", 0.0, 2.0, args={"flops": 8.0})
        tr.instant(0, "mark", 0.5)
        doc = json.loads(tr.to_json())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        assert {"process_name", "thread_name", "thread_sort_index"} <= {
            m["name"] for m in metas
        }
        x = [e for e in events if e["ph"] == "X"]
        assert x[0]["ts"] == 0.0 and x[0]["dur"] == pytest.approx(2e6)
        path = tr.write(tmp_path / "trace.json")
        assert json.loads(pathlib.Path(path).read_text())["traceEvents"]


class TestEngineTracing:
    @pytest.fixture(scope="class")
    def traced(self):
        mo = make_random_mo(5, seed=7)
        problem = CIProblem(mo, 2, 2)
        tracer = ChromeTracer()
        ps = ParallelSigma(problem, X1Config(n_msps=4), tracer=tracer)
        C = problem.random_vector(0)
        sigma = ps(C)
        return problem, C, sigma, tracer

    def test_trace_has_expected_spans(self, traced):
        _, _, _, tracer = traced
        names = tracer.span_names()
        assert "DDI_GET" in names
        assert "DDI_ACC" in names
        assert any(n.startswith("DGEMM") for n in names)
        assert "barrier" in names

    def test_all_ranks_have_tracks(self, traced):
        _, _, _, tracer = traced
        assert {e["tid"] for e in tracer.events()} == {0, 1, 2, 3}

    def test_export_per_rank_timestamps_monotone(self, traced):
        _, _, _, tracer = traced
        doc = json.loads(tracer.to_json())
        assert isinstance(doc["traceEvents"], list)
        per_rank: dict[int, list[float]] = {}
        for e in doc["traceEvents"]:
            if e["ph"] in ("X", "B", "E", "i"):
                assert e["pid"] == 0
                per_rank.setdefault(e["tid"], []).append(e["ts"])
        for rank, ts in per_rank.items():
            assert ts == sorted(ts), f"rank {rank} timestamps out of order"

    def test_tracing_does_not_change_numerics(self, traced):
        problem, C, sigma, _ = traced
        plain = ParallelSigma(problem, X1Config(n_msps=4))(C)
        assert np.array_equal(sigma, plain)

    def test_null_tracer_accepts_everything(self):
        tr = NullTracer()
        tr.complete(0, "a", "op", 0.0, 1.0)
        tr.instant(0, "b", 0.0)
        tr.begin(0, "c", 0.0)
        tr.end(0, 1.0)


# -- FLOP accounting vs the analytic Table-1 model ----------------------------


class TestFlopAccounting:
    def test_mixed_spin_only_matches_closed_form(self):
        # one electron of each spin: no same-spin terms, so the counter must
        # equal the analytic mixed-spin DGEMM count exactly.
        n = 4
        mo = make_random_mo(n, seed=5)
        problem = CIProblem(mo, 1, 1)
        counters = SigmaCounters()
        sigma_dgemm(problem, counters=counters, C=problem.random_vector(0))
        nci = problem.dimension
        assert counters.dgemm_flops == dgemm_mixed_spin_flops(n, nci)

    def test_full_space_matches_closed_form(self):
        n = 6
        mo = make_random_mo(n, seed=13)
        problem = CIProblem(mo, 3, 3)
        counters = SigmaCounters()
        sigma_dgemm(problem, problem.random_vector(1), counters=counters)
        na, nb = problem.shape
        npair = problem.w_matrix.shape[0]
        expected = dgemm_mixed_spin_flops(n, na * nb)
        expected += dgemm_same_spin_flops(
            npair, problem.doubles_a.reduced_space.size, nb
        )
        expected += dgemm_same_spin_flops(
            npair, problem.doubles_b.reduced_space.size, na
        )
        assert counters.dgemm_flops == expected

    def test_telemetry_routes_through_registry(self):
        mo = make_random_mo(5, seed=2)
        problem = CIProblem(mo, 2, 2)
        tel = Telemetry()
        sigma_dgemm(problem, problem.random_vector(0), telemetry=tel)
        reg = tel.registry
        assert reg.counter("sigma.dgemm.calls").value == 1
        assert reg.counter("sigma.dgemm.flops").value > 0
        assert reg.timer("sigma.dgemm.seconds").count == 1

        sigma_moc(problem, problem.random_vector(0), telemetry=tel)
        assert reg.counter("sigma.moc.calls").value == 1
        indexed = reg.counter("sigma.moc.indexed_ops").value
        assert indexed > 0
        assert reg.counter("sigma.moc.flops").value == 2 * indexed

    def test_ledger_and_rates(self):
        reg = MetricsRegistry()
        counters = SigmaCounters()
        counters.dgemm_flops = 1000
        counters.gather_elements = 10
        counters.scatter_elements = 20
        ledger = account_sigma_dgemm(reg, counters, 2.0)
        assert ledger.flops == 1000
        assert ledger.bytes_moved == 8.0 * 30
        assert ledger.gflops == gflops_rate(1000, 2.0)
        assert ledger.arithmetic_intensity == pytest.approx(1000 / 240)
        assert gflops_rate(1e9, 1.0) == 1.0
        assert gflops_rate(1.0, 0.0) == 0.0

    def test_parallel_report_accounting(self):
        mo = make_random_mo(5, seed=4)
        problem = CIProblem(mo, 2, 2)
        ps = ParallelSigma(problem, X1Config(n_msps=4))
        ps(problem.random_vector(0))
        reg = MetricsRegistry()
        ledger = account_parallel_report(reg, ps.report, 4)
        assert reg.counter("x1.runs").value == 1
        assert reg.counter("x1.bytes_communicated").value == ps.report.bytes_communicated
        assert reg.gauge("x1.gflops_per_msp").value == pytest.approx(
            ps.report.gflops_rate() / 4
        )
        assert ledger.seconds == ps.report.elapsed
        assert any(name.startswith("x1.phase.") for name in reg)


# -- solver telemetry and the disabled-is-identical guarantee -----------------


class TestSolverTelemetry:
    def test_per_iteration_records(self, h2, h2_ao, h2_scf):
        tel = Telemetry()
        res = FCISolver(
            h2, "sto-3g", ao_integrals=h2_ao, scf_result=h2_scf, telemetry=tel
        ).run()
        iters = tel.iterations()
        assert len(iters) == res.solve.n_iterations
        assert iters[0]["method"] == "auto"
        assert iters[-1]["residual_norm"] < 1e-5
        assert iters[-1]["energy"] == pytest.approx(res.energy - res.mo.e_core)
        reg = tel.registry
        assert reg.counter("solver.solves").value == 1
        assert reg.gauge("solver.converged").value == 1.0
        assert reg.gauge("solver.ci_dimension").value == res.problem.dimension
        assert reg.counter("sigma.dgemm.calls").value == res.n_sigma

    @pytest.mark.parametrize("method", ["auto", "davidson", "olsen-damped"])
    def test_disabled_telemetry_bitwise_identical(self, h2, h2_ao, h2_scf, method):
        kwargs = dict(ao_integrals=h2_ao, scf_result=h2_scf, method=method)
        plain = FCISolver(h2, "sto-3g", **kwargs).run()
        nulled = FCISolver(
            h2, "sto-3g", telemetry=NULL_TELEMETRY, **kwargs
        ).run()
        traced = FCISolver(
            h2,
            "sto-3g",
            telemetry=Telemetry(tracer=ChromeTracer()),
            **kwargs,
        ).run()
        assert plain.energy == nulled.energy == traced.energy
        assert np.array_equal(plain.vector, nulled.vector)
        assert np.array_equal(plain.vector, traced.vector)

    def test_null_telemetry_is_falsy_and_inert(self):
        assert not NULL_TELEMETRY
        assert NULL_TELEMETRY.counter("x") is None
        NULL_TELEMETRY.solver_iteration("m", 1, -1.0, 1e-3)
        NULL_TELEMETRY.solver_result("m", -1.0, True, 1, 1)
        assert NULL_TELEMETRY.iterations() == []
        assert NULL_TELEMETRY.snapshot() == {}


# -- benchmark results writer -------------------------------------------------


def test_write_result_emits_structured_json(tmp_path, capsys):
    spec = importlib.util.spec_from_file_location(
        "bench_conftest",
        pathlib.Path(__file__).parent.parent / "benchmarks" / "conftest.py",
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    mod.RESULTS_DIR = tmp_path / "nested" / "results"

    paths = mod.write_result(
        "unit",
        "a table",
        rows=[["metric", 1.0, 2.0]],
        metrics={"x1.flops": {"kind": "counter", "value": 3.0}},
    )
    assert [p.name for p in paths] == ["unit.txt", "unit.json"]
    assert all(p.exists() for p in paths)
    doc = json.loads(paths[1].read_text())
    assert doc["name"] == "unit"
    assert doc["text"] == "a table"
    assert doc["rows"] == [["metric", 1.0, 2.0]]
    assert doc["metrics"]["x1.flops"]["value"] == 3.0
    assert "timestamp" in doc
    assert "a table" in capsys.readouterr().out
