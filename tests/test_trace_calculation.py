"""Tests for full-calculation trace simulation and remaining edge paths."""

import numpy as np
import pytest

from repro.parallel import FCISpaceSpec, TraceFCI, atom_irreps, homonuclear_diatomic_irreps
from repro.x1 import Engine, SymmetricHeap, X1Config


class TestRunCalculation:
    @pytest.fixture(scope="class")
    def c2(self):
        spec = FCISpaceSpec(66, 4, 4, "D2h", homonuclear_diatomic_irreps(66), 0)
        return TraceFCI(spec, X1Config(n_msps=432))

    def test_paper_total_time(self, c2):
        # paper: 25 iterations at ~249 s/iteration => ~1.7 hours
        out = c2.run_calculation(25)
        assert out["iterations"] == 25
        assert 1.0 < out["total_hours"] < 3.0
        assert abs(out["total_seconds"] - 25 * out["seconds_per_iteration"]) < 1e-6

    def test_comm_accumulates(self, c2):
        out = c2.run_calculation(3)
        assert abs(out["total_comm_bytes"] - 3 * out["iteration"].comm_bytes) < 1.0

    def test_validation(self, c2):
        with pytest.raises(ValueError):
            c2.run_calculation(0)


class TestTraceEdges:
    def test_no_symmetry_spec(self):
        spec = FCISpaceSpec(12, 3, 3, name="plain")
        res = TraceFCI(spec, X1Config(n_msps=4)).run_iteration()
        assert res.elapsed > 0
        assert res.spec_name

    def test_few_electron_space(self):
        # nb = 1: no same-spin beta work at all
        spec = FCISpaceSpec(10, 1, 1)
        res = TraceFCI(spec, X1Config(n_msps=2)).run_iteration()
        assert res.phase_seconds.get("beta-beta", 0.0) == 0.0

    def test_custom_io_override(self):
        spec = FCISpaceSpec(12, 3, 3)
        res = TraceFCI(
            spec, X1Config(n_msps=4), io_bytes_per_iteration=246e6
        ).run_iteration()
        assert abs(res.phase_seconds["disk-io"] - 1.0) < 0.2

    def test_atom_and_diatomic_irreps_cover_all(self):
        for gen in (atom_irreps, homonuclear_diatomic_irreps):
            irr = gen(50)
            assert irr.shape == (50,)
            assert set(np.unique(irr)) <= set(range(8))
            assert len(np.unique(irr)) == 8  # every irrep populated

    def test_trace_result_repr_fields(self):
        spec = FCISpaceSpec(12, 3, 3)
        res = TraceFCI(spec, X1Config(n_msps=4)).run_iteration()
        assert res.n_msps == 4
        assert res.algorithm == "dgemm"
        assert res.total_flops > 0


class TestEngineEdges:
    def test_unknown_op_rejected(self):
        from repro.x1.engine import Op

        cfg = X1Config(n_msps=1)
        heap = SymmetricHeap(1)

        def prog(proc, h):
            yield Op(kind="teleport")

        with pytest.raises(ValueError):
            Engine(cfg, heap).run([prog])

    def test_program_count_mismatch(self):
        cfg = X1Config(n_msps=2)
        heap = SymmetricHeap(2)
        with pytest.raises(ValueError):
            Engine(cfg, heap).run([])

    def test_heap_rank_mismatch(self):
        with pytest.raises(ValueError):
            Engine(X1Config(n_msps=2), SymmetricHeap(3))

    def test_event_counter(self):
        cfg = X1Config(n_msps=2)
        heap = SymmetricHeap(2)

        def prog(proc, h):
            yield proc.compute(0.1)
            yield proc.barrier()

        eng = Engine(cfg, heap)
        eng.run([prog] * 2)
        assert eng.n_events >= 4

    def test_per_rank_shapes(self):
        heap = SymmetricHeap(3)
        heap.alloc_per_rank("v", [(1,), (2,), (3,)])
        assert heap.segment("v", 2).shape == (3,)
        with pytest.raises(ValueError):
            heap.alloc_per_rank("w", [(1,)])
