"""Tests for the Table-1 analytic performance model."""

import pytest

from repro.core import CIProblem
from repro.parallel import alpha_beta_model, measured_counts
from tests.conftest import make_random_mo


class TestModel:
    def test_paper_c2_comm_volume(self):
        # DGEMM comm: 3 Nci na elements = 6.2 TB for the C2 benchmark
        row = alpha_beta_model("C2", 66, 4, 4, 64_931_348_928)
        assert abs(row.dgemm_comm_elements * 8 - 6.23e12) / 6.23e12 < 0.01

    def test_moc_comm_much_larger(self):
        row = alpha_beta_model("O", 43, 5, 4, 14_851_999_576)
        assert row.comm_ratio > 10  # paper: ~25x reduction

    def test_operation_counts_comparable_for_large_basis(self):
        # paper: for O/aug-cc-pVQZ the op-count difference is insignificant
        row = alpha_beta_model("O", 43, 5, 3, 1.48e9)
        assert 0.3 < row.operation_ratio < 3.0

    def test_operation_ratio_small_basis(self):
        # in a minimal basis MOC does fewer operations (the DGEMM algorithm
        # wins on kernel speed, not operation count)
        row = alpha_beta_model("minimal", 10, 5, 5, 63504)
        assert row.operation_ratio < 1.0


class TestMeasured:
    def test_counters_and_agreement(self):
        mo = make_random_mo(5, seed=8)
        prob = CIProblem(mo, 2, 2)
        out = measured_counts(prob)
        assert out["dgemm"]["dgemm_flops"] > 0
        assert out["moc"]["indexed_ops"] > 0
        assert out["agreement_error"] < 1e-9

    def test_moc_indexed_ops_track_model(self):
        # measured indexed ops should scale like the model's operation count
        mo = make_random_mo(6, seed=9)
        p1 = CIProblem(mo, 2, 2)
        p2 = CIProblem(mo, 3, 3)
        c1 = measured_counts(p1)["moc"]["indexed_ops"]
        c2 = measured_counts(p2)["moc"]["indexed_ops"]
        m1 = alpha_beta_model("a", 6, 2, 2, p1.dimension).moc_operations
        m2 = alpha_beta_model("b", 6, 3, 3, p2.dimension).moc_operations
        assert 0.3 < (c2 / c1) / (m2 / m1) < 3.0
