"""Tests for Gaussian basis shells and tabulated basis-set data."""

import math

import numpy as np
import pytest

from repro.basis import (
    BasisSet,
    Shell,
    atomic_number,
    available_basis_sets,
    build_basis,
    cartesian_components,
    even_tempered_shells,
    n_cartesian,
    primitive_norm,
)
from repro.integrals import overlap


class TestCartesianComponents:
    def test_s_shell_single_component(self):
        assert cartesian_components(0) == [(0, 0, 0)]

    def test_p_shell_order(self):
        assert cartesian_components(1) == [(1, 0, 0), (0, 1, 0), (0, 0, 1)]

    def test_d_shell_has_six(self):
        comps = cartesian_components(2)
        assert len(comps) == 6
        assert comps[0] == (2, 0, 0)
        assert (1, 1, 0) in comps

    @pytest.mark.parametrize("l,expected", [(0, 1), (1, 3), (2, 6), (3, 10), (4, 15)])
    def test_component_count_formula(self, l, expected):
        assert n_cartesian(l) == expected
        assert len(cartesian_components(l)) == expected

    def test_components_sum_to_l(self):
        for l in range(5):
            for i, j, k in cartesian_components(l):
                assert i + j + k == l


class TestPrimitiveNorm:
    def test_s_norm_analytic(self):
        # N^2 * (pi/(2a))^(3/2) = 1 for s
        a = 0.7
        n = primitive_norm(a, (0, 0, 0))
        self_overlap = n * n * (math.pi / (2 * a)) ** 1.5
        assert abs(self_overlap - 1.0) < 1e-12

    def test_p_norm_analytic(self):
        a = 1.3
        n = primitive_norm(a, (1, 0, 0))
        # <x e|x e> = N^2 * 1/(2*2a) * (pi/(2a))^(3/2)
        self_overlap = n * n * (math.pi / (2 * a)) ** 1.5 / (4 * a)
        assert abs(self_overlap - 1.0) < 1e-12

    def test_higher_angular_momentum_positive(self):
        for lmn in [(2, 0, 0), (1, 1, 0), (2, 1, 1)]:
            assert primitive_norm(0.5, lmn) > 0


class TestShell:
    def test_requires_matching_lengths(self):
        with pytest.raises(ValueError):
            Shell(0, [1.0, 2.0], [1.0], np.zeros(3))

    def test_rejects_negative_exponents(self):
        with pytest.raises(ValueError):
            Shell(0, [-1.0], [1.0], np.zeros(3))

    def test_rejects_bad_center(self):
        with pytest.raises(ValueError):
            Shell(0, [1.0], [1.0], np.zeros(2))

    def test_contracted_normalization_unit_self_overlap(self):
        sh = Shell(0, [3.0, 0.8, 0.2], [0.3, 0.5, 0.4], np.zeros(3))
        basis = BasisSet([sh])
        S = overlap(basis)
        assert abs(S[0, 0] - 1.0) < 1e-10

    def test_p_shell_normalization(self):
        sh = Shell(1, [1.2, 0.3], [0.6, 0.5], np.zeros(3))
        S = overlap(BasisSet([sh]))
        assert np.allclose(np.diag(S), 1.0, atol=1e-10)

    def test_d_shell_diagonal_normalized(self):
        sh = Shell(2, [0.9], [1.0], np.zeros(3))
        S = overlap(BasisSet([sh]))
        assert np.allclose(np.diag(S), 1.0, atol=1e-10)

    def test_nfunc(self):
        assert Shell(2, [1.0], [1.0], np.zeros(3)).nfunc == 6


class TestBasisSet:
    def test_function_count_h2_sto3g(self, h2):
        basis = h2.basis("sto-3g")
        assert basis.nbf == 2

    def test_function_count_water_sto3g(self, water):
        assert water.basis("sto-3g").nbf == 7

    def test_function_count_water_631g(self, water):
        # O: 3s + 2p(6) = 9; H: 2s each
        assert water.basis("6-31g").nbf == 13

    def test_shell_offsets_monotone(self, water):
        basis = water.basis("sto-3g")
        assert basis.shell_offsets == sorted(basis.shell_offsets)

    def test_repr_mentions_count(self, h2):
        assert "2 functions" in repr(h2.basis("sto-3g"))

    def test_max_l(self, water):
        assert water.basis("sto-3g").max_l() == 1


class TestBasisData:
    def test_atomic_numbers(self):
        assert atomic_number("H") == 1
        assert atomic_number("c") == 6
        assert atomic_number("O") == 8

    def test_unknown_element_raises(self):
        with pytest.raises(KeyError):
            atomic_number("Xx")

    def test_available_sets(self):
        names = available_basis_sets()
        assert "sto-3g" in names and "6-31g" in names

    def test_unknown_basis_raises(self):
        with pytest.raises(KeyError):
            build_basis([("H", np.zeros(3))], "nope-31g")

    def test_sto3g_h_exponents(self):
        basis = build_basis([("H", np.zeros(3))], "sto-3g")
        # standard scaled values (zeta = 1.24)
        assert np.allclose(
            basis.shells[0].exponents,
            [3.42525091, 0.62391373, 0.16885540],
            rtol=1e-6,
        )

    def test_sto3g_oxygen_has_5_functions(self):
        basis = build_basis([("O", np.zeros(3))], "sto-3g")
        assert basis.nbf == 5  # 1s, 2s, 2px, 2py, 2pz

    def test_631g_not_tabulated_for_helium(self):
        with pytest.raises(KeyError):
            build_basis([("He", np.zeros(3))], "6-31g")

    def test_sto3g_not_tabulated_beyond_neon(self):
        with pytest.raises(KeyError):
            build_basis([("Na", np.zeros(3))], "sto-3g")


class TestEvenTempered:
    def test_shell_count(self):
        shells = even_tempered_shells(np.zeros(3), n_s=4, n_p=2)
        assert len(shells) == 6
        assert sum(1 for s in shells if s.l == 1) == 2

    def test_geometric_progression(self):
        shells = even_tempered_shells(np.zeros(3), n_s=3, alpha0=0.2, beta=3.0)
        exps = [float(s.exponents[0]) for s in shells]
        assert np.allclose(exps, [0.2, 0.6, 1.8])

    def test_beta_must_exceed_one(self):
        with pytest.raises(ValueError):
            even_tempered_shells(np.zeros(3), beta=0.9)

    def test_even_tempered_overlap_well_conditioned(self):
        shells = even_tempered_shells(np.zeros(3), n_s=5, alpha0=0.1, beta=2.5)
        S = overlap(BasisSet(shells))
        assert np.linalg.cond(S) < 1e6
