"""Shared test-support builders: random CI problems, vector stacks, guesses.

One home for the construction helpers that were previously duplicated
across test_sigma / test_kernels / test_parallel_numeric (and now feed the
differential harness too).  Everything is deterministic under its ``seed``
argument, so tests stay reproducible and cross-file comparisons stay
bitwise-meaningful.
"""

from __future__ import annotations

import numpy as np

from repro.core import CIProblem
from repro.molecule import PointGroup
from repro.scf.mo import MOIntegrals


def make_random_mo(n: int, seed: int = 0) -> MOIntegrals:
    """Random but physically-symmetric MO integrals (test Hamiltonians)."""
    rng = np.random.default_rng(seed)
    h = rng.standard_normal((n, n))
    h = 0.5 * (h + h.T)
    g = rng.standard_normal((n, n, n, n))
    g = g + g.transpose(1, 0, 2, 3)
    g = g + g.transpose(0, 1, 3, 2)
    g = g + g.transpose(2, 3, 0, 1)
    return MOIntegrals(h=h, g=g, e_core=0.0, n_orbitals=n)


def make_random_problem(
    n: int,
    n_alpha: int,
    n_beta: int,
    seed: int = 0,
    *,
    diag=None,
) -> CIProblem:
    """A random CIProblem; ``diag`` adds a one-electron diagonal shift so
    eigensolver tests get a well-separated spectrum."""
    mo = make_random_mo(n, seed=seed)
    if diag is not None:
        mo.h += np.diag(np.asarray(diag, dtype=float))
    return CIProblem(mo, n_alpha, n_beta)


def make_symmetry_problem(
    n: int = 6,
    n_alpha: int = 3,
    n_beta: int = 3,
    seed: int = 19,
    *,
    group: str = "C2v",
    target_irrep: int = 0,
) -> CIProblem:
    """A symmetry-blocked CIProblem with random orbital irreps."""
    rng = np.random.default_rng(seed)
    mo = make_random_mo(n, seed=seed)
    pg = PointGroup.get(group)
    pt = pg.product_table()
    mo = MOIntegrals(
        h=mo.h,
        g=mo.g,
        e_core=0.0,
        n_orbitals=n,
        orbital_irreps=rng.integers(0, pt.shape[0], size=n),
    )
    return CIProblem(
        mo, n_alpha, n_beta, target_irrep=target_irrep, product_table=pt
    )


def stack_of_vectors(problem: CIProblem, k: int, seed: int = 0) -> np.ndarray:
    """A (k, na, nb) stack of the problem's seeded random CI vectors."""
    return np.stack([problem.random_vector(seed + i) for i in range(k)])


def model_space_guesses(problem: CIProblem, pre, n: int) -> list[np.ndarray]:
    """The n lowest model-space eigenvectors embedded in the full space."""
    ev, evec = np.linalg.eigh(pre.h_model)
    out = []
    for i in range(n):
        g = np.zeros(problem.dimension)
        g[pre.selection] = evec[:, i]
        out.append(g.reshape(problem.shape))
    return out
