"""Tests for string spaces, addressing, and irrep counting."""

from math import comb

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import StringSpace, ci_dimension, count_strings_by_irrep, fci_space_size
from repro.molecule import PointGroup


class TestStringSpace:
    def test_size(self):
        assert StringSpace(6, 3).size == 20

    def test_empty(self):
        s = StringSpace(4, 0)
        assert s.size == 1
        assert s.masks[0] == 0

    def test_full(self):
        s = StringSpace(4, 4)
        assert s.size == 1
        assert s.masks[0] == 0b1111

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            StringSpace(3, 4)
        with pytest.raises(ValueError):
            StringSpace(3, -1)

    def test_large_n_rejected(self):
        with pytest.raises(ValueError):
            StringSpace(66, 4)

    def test_masks_unique_and_sorted(self):
        s = StringSpace(7, 3)
        masks = np.asarray(s.masks)
        assert len(set(masks.tolist())) == s.size
        assert np.all(np.diff(masks) > 0)  # colex order = ascending masks

    def test_index_roundtrip(self):
        s = StringSpace(6, 2)
        for i in range(s.size):
            assert s.index(int(s.masks[i])) == i

    def test_rank_matches_index(self):
        s = StringSpace(7, 3)
        for i in range(s.size):
            occ = tuple(int(o) for o in s.occ(i))
            assert s.rank(occ) == i

    def test_occupations_match_masks(self):
        s = StringSpace(8, 4)
        for i in range(0, s.size, 7):
            mask = int(s.masks[i])
            occ = [int(o) for o in s.occ(i)]
            assert sum(1 << o for o in occ) == mask

    def test_occupancy_matrix(self):
        s = StringSpace(5, 2)
        O = s.occupancy_matrix()
        assert O.shape == (10, 5)
        assert np.all(O.sum(axis=1) == 2)
        # reconstruct masks
        for i in range(s.size):
            mask = sum(1 << p for p in range(5) if O[i, p])
            assert mask == int(s.masks[i])

    @given(st.integers(1, 10), st.integers(0, 10))
    @settings(max_examples=40, deadline=None)
    def test_size_binomial(self, n, k):
        if k > n:
            return
        assert StringSpace(n, k).size == comb(n, k)


class TestIrreps:
    def test_trivial_group(self):
        s = StringSpace(5, 2)
        pt = PointGroup.get("C1").product_table()
        irr = s.irreps(np.zeros(5, dtype=int), pt)
        assert np.all(irr == 0)

    def test_xor_property(self):
        g = PointGroup.get("D2h")
        pt = g.product_table()
        rng = np.random.default_rng(5)
        orb = rng.integers(0, 8, size=7)
        s = StringSpace(7, 3)
        irr = s.irreps(orb, pt)
        # recompute by hand
        for i in range(0, s.size, 5):
            acc = 0
            for o in s.occ(i):
                acc = pt[acc, orb[int(o)]]
            assert irr[i] == acc

    def test_count_matches_enumeration(self):
        g = PointGroup.get("D2h")
        pt = g.product_table()
        rng = np.random.default_rng(9)
        for n, k in [(6, 3), (8, 4), (10, 2)]:
            orb = rng.integers(0, 8, size=n)
            s = StringSpace(n, k)
            irr = s.irreps(orb, pt)
            counted = count_strings_by_irrep(n, k, orb, pt, 8)
            for r in range(8):
                assert int(counted[r]) == int(np.sum(irr == r))

    def test_count_totals(self):
        g = PointGroup.get("C2v")
        pt = g.product_table()
        orb = np.array([0, 1, 2, 3, 0, 1])
        counts = count_strings_by_irrep(6, 3, orb, pt, 4)
        assert sum(int(c) for c in counts) == comb(6, 3)

    def test_count_works_beyond_62_orbitals(self):
        # the paper's C2 space: FCI(8,66)
        pt = PointGroup.get("C1").product_table()
        counts = count_strings_by_irrep(66, 4, np.zeros(66, dtype=int), pt, 1)
        assert int(counts[0]) == comb(66, 4)


class TestCIDimension:
    def test_unblocked(self):
        assert ci_dimension(6, 3, 2) == comb(6, 3) * comb(6, 2)
        assert fci_space_size(6, 3, 2) == comb(6, 3) * comb(6, 2)

    def test_blocked_sums_to_total(self):
        g = PointGroup.get("D2h")
        pt = g.product_table()
        rng = np.random.default_rng(3)
        orb = rng.integers(0, 8, size=8)
        total = 0
        for target in range(8):
            total += ci_dimension(8, 3, 3, orb, pt, 8, target)
        assert total == comb(8, 3) ** 2

    def test_requires_product_table(self):
        with pytest.raises(ValueError):
            ci_dimension(6, 3, 3, np.zeros(6, dtype=int))

    def test_paper_c2_dimension_magnitude(self):
        # FCI(8,66) in D2h should land within a percent of 64.93e9
        from repro.parallel import homonuclear_diatomic_irreps

        g = PointGroup.get("D2h")
        pt = g.product_table()
        orb = homonuclear_diatomic_irreps(66)
        dim = ci_dimension(66, 4, 4, orb, pt, 8, 0)
        assert abs(dim - 64_931_348_928) / 64_931_348_928 < 0.01
