"""Tests for the Cray-X1 machine model."""

import pytest

from repro.x1 import X1Config


class TestTopology:
    def test_peak_flops(self):
        cfg = X1Config()
        assert abs(cfg.peak_flops - 12.8e9) < 1e6  # the X1 MSP peak

    def test_aggregate_peak(self):
        cfg = X1Config(n_msps=432)
        assert abs(cfg.aggregate_peak_flops - 432 * 12.8e9) < 1e9

    def test_node_mapping(self):
        cfg = X1Config(n_msps=8, msps_per_node=4)
        assert cfg.n_nodes == 2
        assert cfg.node_of(0) == 0 and cfg.node_of(3) == 0
        assert cfg.node_of(4) == 1
        assert cfg.same_node(1, 2)
        assert not cfg.same_node(3, 4)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            X1Config(n_msps=0)
        with pytest.raises(ValueError):
            X1Config(msps_per_node=0)

    def test_describe(self):
        assert "432 MSPs" in X1Config(n_msps=432).describe()


class TestKernelModels:
    def test_dgemm_rate_saturates_below_peak(self):
        cfg = X1Config()
        big = cfg.dgemm_rate(2000, 2000, 2000)
        assert 9e9 < big < cfg.peak_flops

    def test_dgemm_rate_paper_calibration(self):
        # paper ref [20]: 10-11 GF/MSP for matrices beyond 300x300
        cfg = X1Config()
        r = cfg.dgemm_rate(300, 300, 300)
        assert 8.5e9 < r < 11.5e9

    def test_dgemm_small_matrices_slow(self):
        cfg = X1Config()
        assert cfg.dgemm_rate(8, 8, 8) < 0.3 * cfg.peak_flops

    def test_dgemm_time_scales_with_flops(self):
        cfg = X1Config()
        t1 = cfg.dgemm_time(500, 500, 500)
        t2 = cfg.dgemm_time(500, 1000, 500)
        assert 1.5 < t2 / t1 < 2.5

    def test_daxpy_out_of_cache_2gf(self):
        # paper: out-of-cache DAXPY realizes ~2 GF/s per MSP
        cfg = X1Config()
        n = 10_000_000
        assert abs(cfg.daxpy_time(n) - 2.0 * n / 2.0e9) < 1e-9

    def test_daxpy_in_cache_faster(self):
        cfg = X1Config()
        assert cfg.daxpy_time(1000, in_cache=True) < cfg.daxpy_time(1000)

    def test_transfer_local_vs_remote(self):
        cfg = X1Config(n_msps=8, msps_per_node=4)
        nb = 1e6
        t_self = cfg.transfer_time(0, 0, nb)
        t_node = cfg.transfer_time(0, 1, nb)
        t_net = cfg.transfer_time(0, 5, nb)
        assert t_self < t_node < t_net

    def test_latency_structure(self):
        cfg = X1Config(n_msps=8, msps_per_node=4)
        assert cfg.transfer_latency(0, 0) == 0.0
        assert cfg.transfer_latency(0, 1) < cfg.transfer_latency(0, 7)

    def test_io_rates(self):
        cfg = X1Config()
        # paper Table 3: 293 MB/s read, 246 MB/s write
        assert abs(cfg.io_time(293e6, write=False) - 1.0) < 1e-9
        assert abs(cfg.io_time(246e6, write=True) - 1.0) < 1e-9

    def test_indexed_update_slower_than_dgemm(self):
        cfg = X1Config()
        flops = 2e9
        assert cfg.indexed_update_time(flops / 2) > cfg.dgemm_time(1000, 1000, flops / (2 * 1000 * 1000))
