"""Figure 5: parallel scalability of the O- calculation, 128 -> 256 MSPs.

The paper reports almost perfect speedup for the oxygen-anion ground state
(14,851,999,576 determinants, aug-cc-pVQZ) between 128 and 256 MSPs, with
the same-spin routine sustaining ~9.6 GF/MSP and the mixed-spin routine
8.5 -> 8.1 GF/MSP.
"""

import pytest

from repro.analysis import format_series
from repro.parallel import FCISpaceSpec, TraceFCI, atom_irreps
from repro.x1 import X1Config

from conftest import write_result

MSPS = [128, 160, 192, 224, 256]


@pytest.fixture(scope="module")
def o_anion_spec():
    spec = FCISpaceSpec(43, 4, 5, "D2h", atom_irreps(43), 0, name="O-")
    # sanity: the space must match the paper's quoted dimension
    assert abs(spec.ci_dimension() - 14_851_999_576) / 14_851_999_576 < 0.02
    return spec


@pytest.fixture(scope="module")
def fig5_results(o_anion_spec):
    return {
        P: TraceFCI(o_anion_spec, X1Config(n_msps=P)).run_iteration() for P in MSPS
    }


def test_fig5_speedup(fig5_results, o_anion_spec):
    base = fig5_results[MSPS[0]].elapsed * MSPS[0]
    speedup = [fig5_results[P].elapsed and MSPS[0] * fig5_results[MSPS[0]].elapsed / fig5_results[P].elapsed / MSPS[0] for P in MSPS]
    speedup = [fig5_results[MSPS[0]].elapsed / fig5_results[P].elapsed for P in MSPS]
    ideal = [P / MSPS[0] for P in MSPS]
    series = {
        "speedup": [round(s, 3) for s in speedup],
        "ideal": ideal,
        "efficiency": [round(s / i, 3) for s, i in zip(speedup, ideal)],
        "bb GF/MSP": [
            round(fig5_results[P].phase_gflops_per_msp["beta-beta"], 2) for P in MSPS
        ],
        "ab GF/MSP": [
            round(fig5_results[P].phase_gflops_per_msp["alpha-beta"], 2) for P in MSPS
        ],
    }
    text = format_series(
        "MSPs",
        MSPS,
        series,
        title=f"Fig 5: {o_anion_spec.describe()} - speedup relative to 128 MSPs",
    )
    text += (
        "\npaper: almost perfect speedup; same-spin ~9.6 GF/MSP, "
        "mixed-spin 8.5 -> 8.1 GF/MSP"
    )
    write_result("fig5_speedup", text)

    # almost perfect speedup: >= 93% parallel efficiency at 2x
    assert speedup[-1] > 1.86
    # monotone speedup
    assert all(b > a for a, b in zip(speedup, speedup[1:]))
    # sustained per-MSP rates in the paper's neighbourhood and ordering
    for P in MSPS:
        bb = fig5_results[P].phase_gflops_per_msp["beta-beta"]
        ab = fig5_results[P].phase_gflops_per_msp["alpha-beta"]
        assert 7.0 < bb < 12.0
        assert 6.0 < ab < 11.0
        assert ab < bb  # mixed-spin slower per MSP (gathers + comm)


def test_fig5_mixed_rate_degrades_slightly(fig5_results):
    # paper: 8.5 GF/MSP at 128 down to 8.1 at 256 - a mild monotone decline
    rates = [fig5_results[P].phase_gflops_per_msp["alpha-beta"] for P in MSPS]
    assert rates[-1] <= rates[0] + 0.05
    assert rates[0] - rates[-1] < 1.0


def test_bench_fig5_point(benchmark, o_anion_spec):
    trace = TraceFCI(o_anion_spec, X1Config(n_msps=256))
    benchmark(trace.run_iteration)
