"""ERI engine benchmark: batched/screened quartets vs the scalar oracle.

Prices the integral-layer tentpole: the two-electron assembly that feeds
every SCF/FCI pipeline used to be a pure-Python primitive-quad quadruple
loop (~2 s for water/6-31G), making every golden-energy test and any
paper-scale molecule *setup*-bound.  The batched engine evaluates each
shell quartet's whole primitive batch with one vectorized Hermite-Coulomb
sweep plus two dense contractions, and Cauchy-Schwarz screening skips
negligible quartets.

Gates:

* **speedup** — batched engine >= 5x over the retained scalar path on
  water/6-31G (13 basis functions, s+p shells);
* **fidelity** — max-abs deviation <= 1e-12 against the scalar oracle with
  screening engaged at tau = 0 (which must also be bitwise-identical to the
  unscreened engine).
"""

import time

import numpy as np

from repro.integrals.two_electron import IntegralEngine, eri_reference
from repro.molecule import Molecule

from conftest import write_result

SPEEDUP_GATE = 5.0
DEVIATION_GATE = 1e-12

# far-dimer screening gates: tau bounds every skipped quartet's elements, so
# the screened tensor may deviate from the oracle by at most tau per element
SCREEN_TAU = 1e-10
SCREEN_FRACTION_GATE = 0.25  # >= this fraction of quartets must be screened

_WATER_ATOMS = [
    ("O", (0.0, 0.0, 0.2217)),
    ("H", (0.0, 1.4309, -0.8867)),
    ("H", (0.0, -1.4309, -0.8867)),
]


def _water():
    return Molecule.from_atoms(_WATER_ATOMS, name="H2O")


def _far_water_dimer(separation: float = 30.0):
    """Two waters ``separation`` bohr apart along x: inter-monomer bra/ket
    shell pairs have vanishing overlap, so their Schwarz bounds actually
    prune quartets (the compact single-molecule cases screen nothing)."""
    atoms = list(_WATER_ATOMS) + [
        (sym, (x + separation, y, z)) for sym, (x, y, z) in _WATER_ATOMS
    ]
    return Molecule.from_atoms(atoms, name="(H2O)2@30")


def _best_of(fn, repeats=3):
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_eri_engine_speedup_and_fidelity():
    basis = _water().basis("6-31g")
    t_scalar, g_scalar = _best_of(lambda: eri_reference(basis), repeats=2)

    # screening engaged at tau=0: skips nothing, exercises the full path
    def batched():
        return IntegralEngine(basis, screen_threshold=0.0).eri()

    t_batched, g_batched = _best_of(batched)
    speedup = t_scalar / t_batched
    deviation = float(np.abs(g_batched - g_scalar).max())
    bitwise_tau0 = bool(
        np.array_equal(g_batched, IntegralEngine(basis).eri())
    )

    engine = IntegralEngine(basis, screen_threshold=0.0)
    engine.eri()
    stats = engine.stats

    lines = [
        "ERI assembly: batched+screened engine vs scalar primitive-quad loop",
        f"{'molecule/basis':>18} {'scalar':>10} {'batched':>10} {'speedup':>8}",
        f"{'water/6-31G':>18} {t_scalar:10.4f} {t_batched:10.4f} {speedup:7.2f}x",
        "",
        f"max-abs deviation vs oracle: {deviation:.3e} (gate {DEVIATION_GATE:.0e})",
        f"tau=0 bitwise-identical to unscreened: {bitwise_tau0}",
        f"shell quartets: {stats.quartets_computed} computed, "
        f"{stats.quartets_screened} screened of {stats.quartets_total}",
        f"contraction flops: {stats.flops:.3e}",
    ]
    write_result(
        "BENCH_eri",
        "\n".join(lines),
        rows=[
            {
                "molecule": "H2O",
                "basis": "6-31g",
                "nbf": basis.nbf,
                "scalar_s": t_scalar,
                "batched_s": t_batched,
                "speedup": speedup,
                "max_abs_deviation": deviation,
            }
        ],
        metrics={
            "speedup": speedup,
            "speedup_gate": SPEEDUP_GATE,
            "max_abs_deviation": deviation,
            "deviation_gate": DEVIATION_GATE,
            "tau0_bitwise_identical": bitwise_tau0,
            "quartets_total": stats.quartets_total,
            "quartets_computed": stats.quartets_computed,
            "quartets_screened": stats.quartets_screened,
            "eri_flops": stats.flops,
            "eri_bytes": stats.bytes_moved,
        },
    )
    assert deviation <= DEVIATION_GATE, (
        f"engine deviates {deviation:.3e} from the scalar oracle"
    )
    assert bitwise_tau0, "tau=0 screening changed bits vs the unscreened engine"
    assert speedup >= SPEEDUP_GATE, (
        f"ERI speedup {speedup:.2f}x below the {SPEEDUP_GATE}x gate"
    )


def test_eri_screening_prunes_far_dimer():
    """Schwarz screening engaged for real: a separated dimer where tau prunes.

    The single-molecule fidelity case above screens nothing (0/1035 for
    water/6-31G) because every shell pair overlaps; here two waters sit 30
    bohr apart, so quartets touching an inter-monomer bra or ket pair fall
    under tau and are skipped, while the long-range (AA|BB) Coulomb blocks
    survive - the screened tensor still matches the scalar oracle to tau.
    """
    basis = _far_water_dimer().basis("6-31g")

    t_screened, g_screened = _best_of(
        lambda: IntegralEngine(basis, screen_threshold=SCREEN_TAU).eri()
    )
    t_unscreened, g_unscreened = _best_of(lambda: IntegralEngine(basis).eri())
    t_scalar, g_scalar = _best_of(lambda: eri_reference(basis), repeats=1)

    engine = IntegralEngine(basis, screen_threshold=SCREEN_TAU)
    engine.eri()
    stats = engine.stats
    fraction = stats.quartets_screened / stats.quartets_total
    dev_oracle = float(np.abs(g_screened - g_scalar).max())
    dev_unscreened = float(np.abs(g_screened - g_unscreened).max())

    lines = [
        "Schwarz screening on a far-separated water dimer (30 bohr, 6-31G)",
        f"{'path':>12} {'seconds':>10}",
        f"{'scalar':>12} {t_scalar:10.4f}",
        f"{'unscreened':>12} {t_unscreened:10.4f}",
        f"{'screened':>12} {t_screened:10.4f}  (tau={SCREEN_TAU:.0e})",
        "",
        f"shell quartets: {stats.quartets_screened} screened of "
        f"{stats.quartets_total} ({100 * fraction:.1f}%), "
        f"{stats.quartets_computed} computed",
        f"max-abs deviation vs oracle: {dev_oracle:.3e} (gate {SCREEN_TAU:.0e})",
        f"max-abs deviation vs unscreened engine: {dev_unscreened:.3e}",
    ]
    write_result(
        "BENCH_eri_screening",
        "\n".join(lines),
        rows=[
            {
                "molecule": "(H2O)2@30bohr",
                "basis": "6-31g",
                "nbf": basis.nbf,
                "tau": SCREEN_TAU,
                "scalar_s": t_scalar,
                "unscreened_s": t_unscreened,
                "screened_s": t_screened,
                "screened_fraction": fraction,
                "max_abs_deviation": dev_oracle,
            }
        ],
        metrics={
            "tau": SCREEN_TAU,
            "quartets_total": stats.quartets_total,
            "quartets_computed": stats.quartets_computed,
            "quartets_screened": stats.quartets_screened,
            "screened_fraction": fraction,
            "screened_fraction_gate": SCREEN_FRACTION_GATE,
            "max_abs_deviation": dev_oracle,
            "deviation_vs_unscreened": dev_unscreened,
            "eri_flops": stats.flops,
            "eri_bytes": stats.bytes_moved,
        },
    )
    assert stats.quartets_screened > 0, "far dimer screened no quartets"
    assert fraction >= SCREEN_FRACTION_GATE, (
        f"only {100 * fraction:.1f}% of quartets screened; expected "
        f">= {100 * SCREEN_FRACTION_GATE:.0f}% for a 30-bohr dimer"
    )
    assert dev_oracle <= SCREEN_TAU, (
        f"screened ERI deviates {dev_oracle:.3e} from the oracle (tau bound "
        f"{SCREEN_TAU:.0e})"
    )
