"""Sigma plan benchmark: compile-once-and-cache vs rebuild-per-call.

Prices the tentpole of the kernel/operator refactor:

* **plan caching** — a repeated-evaluation workload (every eigensolver is
  one) pays the table compilation once via ``SigmaPlan.for_problem``;
  the pre-refactor behaviour recompiled the sorted mixed-spin gather
  tables, the W/G supermatrices, and the one-electron CSR operators
  inside every sigma call, reproduced here with
  ``SigmaPlan(problem, reuse_problem_cache=False)``.  Gate: >= 1.3x.
* **batched application** — ``apply_batch`` over a k-stack of CI vectors
  must issue *strictly fewer* DGEMM invocations than k single-vector
  calls (the same arithmetic through k-times-larger right-hand sides).
"""

import time

import numpy as np

from repro.core import CIProblem, DgemmKernel, SigmaPlan
from repro.scf.mo import MOIntegrals

from conftest import write_result


def _random_problem(n, n_alpha, n_beta, seed=42):
    rng = np.random.default_rng(seed)
    h = rng.standard_normal((n, n))
    h = 0.5 * (h + h.T) + np.diag(np.linspace(-3, 2, n)) * 2
    g = rng.standard_normal((n, n, n, n))
    g = g + g.transpose(1, 0, 2, 3)
    g = g + g.transpose(0, 1, 3, 2)
    g = g + g.transpose(2, 3, 0, 1)
    return CIProblem(MOIntegrals(h=h, g=g, e_core=0.0, n_orbitals=n), n_alpha, n_beta)


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _time_workload(problem, n_iter=8, repeats=5):
    """(cached_seconds, rebuild_seconds) for n_iter sigma evaluations."""
    C = problem.random_vector(0)
    plan = SigmaPlan.for_problem(problem)

    def cached():
        kern = DgemmKernel(plan)
        for _ in range(n_iter):
            kern.apply(C, None)

    def rebuild():
        # the pre-refactor hot path: every call recompiles the tables
        for _ in range(n_iter):
            fresh = SigmaPlan(problem, reuse_problem_cache=False)
            DgemmKernel(fresh).apply(C, None)

    cached()  # warm the problem's lazy caches before timing either path
    return _best_of(cached, repeats), _best_of(rebuild, repeats)


def test_plan_cache_speedup_and_batched_dgemm_counts():
    lines = ["sigma plan: cached vs rebuild-per-call (DGEMM kernel)"]
    lines.append(f"{'space':>16} {'cached':>10} {'rebuild':>10} {'speedup':>8}")
    rows = []
    speedups = {}
    for n, na, nb in [(8, 4, 4), (10, 5, 2), (12, 6, 1)]:
        prob = _random_problem(n, na, nb)
        t_cached, t_rebuild = _time_workload(prob)
        s = t_rebuild / t_cached
        speedups[(n, na, nb)] = s
        rows.append(
            {
                "n": n,
                "n_alpha": na,
                "n_beta": nb,
                "cached_s": t_cached,
                "rebuild_s": t_rebuild,
                "speedup": s,
            }
        )
        lines.append(
            f"FCI({na}+{nb},{n}){'':>3} {t_cached:10.4f} {t_rebuild:10.4f} {s:7.2f}x"
        )

    # gate on the string-heavy workload where table compilation dominates
    gated = speedups[(12, 6, 1)]

    # batched multi-vector sigma: strictly fewer DGEMM invocations than
    # k single-vector calls, identical arithmetic
    prob = _random_problem(8, 4, 4)
    kern = DgemmKernel(SigmaPlan.for_problem(prob))
    k = 4
    stack = np.stack([prob.random_vector(i) for i in range(k)])
    batched = kern.make_counters()
    kern.apply_batch(stack, batched)
    singles = kern.make_counters()
    for i in range(k):
        kern.apply(stack[i], singles)
    lines.append("")
    lines.append(
        f"batched sigma over k={k} vectors: {int(batched.dgemm_calls)} DGEMM "
        f"invocations vs {int(singles.dgemm_calls)} for {k} single calls "
        f"(flops identical: {batched.dgemm_flops == singles.dgemm_flops})"
    )

    write_result(
        "BENCH_sigma_plan",
        "\n".join(lines),
        rows=rows,
        metrics={
            "gated_speedup": gated,
            "gate": 1.3,
            "batch_k": k,
            "batched_dgemm_calls": int(batched.dgemm_calls),
            "single_dgemm_calls": int(singles.dgemm_calls),
            "flops_identical": bool(batched.dgemm_flops == singles.dgemm_flops),
        },
    )
    assert gated >= 1.3, f"plan-cache speedup {gated:.2f}x below the 1.3x gate"
    assert batched.dgemm_calls < singles.dgemm_calls
    assert batched.dgemm_flops == singles.dgemm_flops
