"""Figure 4: timing and scalability of MOC vs DGEMM FCI routines.

The paper runs the O atom in aug-cc-pVQZ (about 1.5e9 determinants) on 16
to 128 Cray-X1 MSPs and shows: (a) the MOC same-spin routine "does not scale
at all" because every processor regenerates the full double-excitation list,
(b) the DGEMM-based routines are several-fold faster and scale.

Trace mode reruns that experiment on the simulated X1; a numeric-mode
cross-check on a small space confirms the two algorithms agree numerically
while their kernels differ in speed.
"""

import numpy as np
import pytest

from repro.analysis import format_series
from repro.parallel import FCISpaceSpec, TraceFCI, atom_irreps
from repro.x1 import X1Config

from conftest import write_result

MSPS = [16, 32, 64, 128]


@pytest.fixture(scope="module")
def o_spec():
    # beta = majority spin (the paper's row convention): FCI(8,43), 3P
    return FCISpaceSpec(43, 3, 5, "D2h", atom_irreps(43), 0, name="O")


@pytest.fixture(scope="module")
def fig4_series(o_spec):
    series = {"alpha-beta (MOC)": [], "beta-beta (MOC)": [], "alpha-beta (DGEMM)": [], "beta-beta (DGEMM)": []}
    for P in MSPS:
        for algo, tag in [("moc", "MOC"), ("dgemm", "DGEMM")]:
            res = TraceFCI(o_spec, X1Config(n_msps=P), algorithm=algo).run_iteration()
            series[f"alpha-beta ({tag})"].append(round(res.phase_seconds["alpha-beta"], 1))
            series[f"beta-beta ({tag})"].append(round(res.phase_seconds["beta-beta"], 1))
    return series


def test_fig4_series(fig4_series, o_spec):
    text = format_series(
        "MSPs",
        MSPS,
        fig4_series,
        title=f"Fig 4: O atom {o_spec.describe()} - seconds per sigma build",
    )
    write_result("fig4_moc_vs_dgemm", text)

    bb_moc = fig4_series["beta-beta (MOC)"]
    bb_dg = fig4_series["beta-beta (DGEMM)"]
    ab_moc = fig4_series["alpha-beta (MOC)"]
    ab_dg = fig4_series["alpha-beta (DGEMM)"]

    # (a) MOC same-spin does not scale: < 2x gain over an 8x MSP increase
    assert bb_moc[0] / bb_moc[-1] < 2.0
    # (b) DGEMM same-spin scales near-ideally: > 5x gain over 8x MSPs
    assert bb_dg[0] / bb_dg[-1] > 5.0
    # (c) DGEMM beats MOC on every point of both routines
    assert all(d < m for d, m in zip(bb_dg, bb_moc))
    assert all(d < m for d, m in zip(ab_dg, ab_moc))
    # (d) mixed-spin kernel gap is severalfold (DAXPY/indexed vs DGEMM rates)
    assert ab_moc[0] / ab_dg[0] > 3.0


def test_fig4_communication_reduction(o_spec):
    """Paper: 'communication cost is reduced by about a factor of 25'."""
    moc = TraceFCI(o_spec, X1Config(n_msps=64), algorithm="moc").run_iteration()
    dg = TraceFCI(o_spec, X1Config(n_msps=64), algorithm="dgemm").run_iteration()
    ratio = moc.comm_bytes / dg.comm_bytes
    write_result(
        "fig4_comm_reduction",
        f"communication volume: MOC {moc.comm_bytes/1e9:.1f} GB vs DGEMM "
        f"{dg.comm_bytes/1e9:.1f} GB -> factor {ratio:.1f} (paper: ~25)",
    )
    assert ratio > 5


def test_bench_trace_iteration(benchmark, o_spec):
    """Time the simulator itself (one 128-MSP trace iteration)."""
    trace = TraceFCI(o_spec, X1Config(n_msps=128))
    benchmark(trace.run_iteration)
