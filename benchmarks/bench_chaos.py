"""Chaos-engineering benchmark: fuzz throughput, shrink cost, hook overhead.

Four claims, extending the robustness benchmark one layer up the stack:

* the *service-layer* fault hooks (worker-crash, telemetry, result-rot,
  torn-journal consultations) cost < 2% wall-clock on a warm service solve
  when the injector is idle - chaos-readiness is free in production,
* a seeded fuzz batch executes a meaningful plan mix through the sigma /
  solver / service harnesses with zero invariant violations,
* the mutation-catch proof: with recovery deliberately disabled the fuzzer
  finds a violating plan and shrinks it to a 1-minimal reproducer in a
  bounded number of iterations,
* a composed multi-scenario chaos run (deaths + stalls + flaky network)
  still recovers the serial sigma exactly, with the injected/recovered
  ledger attached as evidence.
"""

import time

import numpy as np

from repro.chaos import ChaosEnv, FuzzBudget, FuzzRunner, build_fault_plan, shrink
from repro.chaos import fuzz as fuzz_mod
from repro.core import sigma_dgemm
from repro.faults import FaultInjector, ServiceFaultInjector, ServiceFaultPlan
from repro.molecule import Molecule
from repro.parallel import ParallelSigma
from repro.service import JobRecord, JobSpec
from repro.service.cache import ArtifactCache
from repro.service.executor import SolveExecutor
from repro.x1 import X1Config

from conftest import write_result


def _interleaved_best(run_a, run_b, k=7):
    """min-of-k for two workloads, alternated so machine drift cancels."""
    best_a = best_b = float("inf")
    for _ in range(k):
        t0 = time.perf_counter()
        run_a()
        best_a = min(best_a, time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_b()
        best_b = min(best_b, time.perf_counter() - t0)
    return best_a, best_b


def test_chaos_fuzz_and_overhead(tmp_path):
    # --- idle service-hook overhead on a warm service solve ------------------
    water = Molecule.from_atoms(
        [
            ("O", (0.0, 0.0, 0.2217)),
            ("H", (0.0, 1.4309, -0.8867)),
            ("H", (0.0, -1.4309, -0.8867)),
        ],
        name="H2O",
    )
    spec = JobSpec.from_molecule(water, "sto-3g")
    cache = ArtifactCache(tmp_path / "bench")
    executor = SolveExecutor(cache, tmp_path / "bench")
    idle = ServiceFaultInjector(ServiceFaultPlan())
    record = JobRecord(key=spec.job_key, spec=spec)

    def _batch(**kw):
        # one warm solve is ~25 ms; batch several per timed sample so the
        # 2% gate sits above scheduler jitter, not inside it
        for _ in range(4):
            executor.execute(record, **kw)

    _batch()  # warm the workspace + sigma plan
    _batch(service_faults=idle)  # ...and both code paths, before timing
    t_none, t_idle = _interleaved_best(
        lambda: _batch(),
        lambda: _batch(service_faults=idle),
        k=9,
    )
    overhead = (t_idle - t_none) / t_none

    # --- seeded fuzz batch: the CI invariants at benchmark scale -------------
    runner = FuzzRunner(FuzzBudget())
    seeds = [s for s in range(60) if runner.case_for_seed(s).harness != "service"]
    report = runner.fuzz(seeds, do_shrink=False)

    # --- mutation catch + shrink cost ----------------------------------------
    fuzz_mod._RECOVERY_ENABLED = False
    try:
        caught = None
        for seed in range(60):
            case = runner.case_for_seed(seed)
            if case.harness != "sigma" or not case.plan.deaths:
                continue
            if runner.run_case(case) is not None:
                caught = case
                break
        assert caught is not None, "mutated recovery not caught"
        shrunk, shrink_iters = shrink(caught, runner.run_case)
    finally:
        fuzz_mod._RECOVERY_ENABLED = True
    still_fails_mutated = shrunk.plan.any_faults()
    healthy_passes = runner.run_case(shrunk) is None

    # --- composed chaos recovery ledger --------------------------------------
    env = ChaosEnv(n_ranks=4, horizon=runner.sigma.horizon, n_spans=8)
    plan = build_fault_plan(
        ["correlated_failures", "adversarial_stalls", "flaky_interconnect"], env, 7
    )
    fi = FaultInjector(plan)
    out = ParallelSigma(runner.sigma.problem, X1Config(n_msps=4), faults=fi)(
        runner.sigma.C
    )
    err = float(np.max(np.abs(out - sigma_dgemm(runner.sigma.problem, runner.sigma.C))))
    counts = fi.counts()
    injected = {k: v for k, v in counts.items() if k.startswith("faults.injected.")}
    recovered = {k: v for k, v in counts.items() if k.startswith("faults.recovered.")}

    lines = [
        "Chaos: fuzz batch, shrink cost, idle service-hook overhead",
        "-" * 62,
        "warm water service solve (4-solve batches, best of 9, interleaved):",
        f"  service_faults=None wall-clock  {t_none:8.3f} s",
        f"  idle injector wall-clock        {t_idle:8.3f} s",
        f"  disabled-hook overhead          {100 * overhead:+8.2f} %   (budget < 2%)",
        f"fuzz batch ({len(seeds)} seeds, sigma+solver lanes):",
        f"  plans executed                  {report.executed}",
        f"  violations                      {len(report.violations)}",
        f"  elapsed                         {report.elapsed_s:8.1f} s",
        "mutation-catch proof (recovery disabled):",
        f"  violating seed found            {caught.seed}",
        f"  shrink iterations               {shrink_iters}",
        f"  shrunk plan still minimal-fails {still_fails_mutated}",
        f"  healthy stack passes reproducer {healthy_passes}",
        "composed 3-scenario chaos run:",
        f"  max |sigma - serial|            {err:.3e}",
    ]
    for name in sorted(counts):
        lines.append(f"  {name:32s}{counts[name]:g}")
    write_result(
        "BENCH_chaos",
        "\n".join(lines),
        rows=[
            ["idle service-hook overhead %", "< 2", round(100 * overhead, 3)],
            ["fuzz plans executed", len(seeds), report.executed],
            ["fuzz violations", 0, len(report.violations)],
            ["shrink iterations", "> 0", shrink_iters],
            ["composed-chaos recovery max |diff|", "< 1e-10", err],
        ],
        metrics={
            "fuzz": report.to_dict(),
            "shrink_iterations": shrink_iters,
            "faults_injected": injected,
            "faults_recovered": recovered,
        },
    )

    assert overhead < 0.02
    assert report.executed == len(seeds)
    assert report.violations == []
    assert shrink_iters > 0
    assert healthy_passes
    assert err < 1e-10
