"""Table 3: the 65-billion-determinant C2 benchmark on 432 MSPs.

Regenerates the paper's headline run: C2 X1Sigma_g+, FCI(8,66) in D2h
(64,931,348,928 determinants), 432 MSPs of the Cray-X1 - per-routine time,
sustained GF/MSP, load imbalance, vector-symmetry and disk-I/O entries, the
6.2 TB/iteration communication volume, and the 3.4 TFLOP/s aggregate.

A laptop-scale C2/STO-3G companion run exercises the *same chemistry* with
real numerics: the automatically adjusted single-vector method converges the
C2 ground state tightly in a paper-comparable number of iterations (the
paper needed 25 iterations to a 1e-5 residual at full scale).
"""

import pytest

from repro import FCISolver, Telemetry
from repro.analysis import paper_comparison
from repro.parallel import FCISpaceSpec, TraceFCI, homonuclear_diatomic_irreps
from repro.x1 import X1Config

from conftest import write_result


@pytest.fixture(scope="module")
def c2_spec():
    spec = FCISpaceSpec(
        66, 4, 4, "D2h", homonuclear_diatomic_irreps(66), 0, name="C2"
    )
    assert abs(spec.ci_dimension() - 64_931_348_928) / 64_931_348_928 < 0.01
    return spec


@pytest.fixture(scope="module")
def c2_telemetry():
    return Telemetry()


@pytest.fixture(scope="module")
def c2_result(c2_spec, c2_telemetry):
    return TraceFCI(
        c2_spec, X1Config(n_msps=432), telemetry=c2_telemetry
    ).run_iteration()


def test_table3_rows(c2_spec, c2_result, c2_telemetry):
    r = c2_result
    rows = [
        ("CI dimension", "64,931,348,928", f"{c2_spec.ci_dimension():,.0f}"),
        ("MSPs", 432, 432),
        ("beta-beta s / GF/MSP", "62 / 8.5", f"{r.phase_seconds['beta-beta']:.0f} / {r.phase_gflops_per_msp['beta-beta']:.1f}"),
        ("alpha-beta s / GF/MSP", "167 / 8.8", f"{r.phase_seconds['alpha-beta']:.0f} / {r.phase_gflops_per_msp['alpha-beta']:.1f}"),
        ("load imbalance s", 9.0, round(r.load_imbalance, 1)),
        ("vector symm s", 11.0, round(r.phase_seconds.get("vector-symm", 0.0), 1)),
        ("disk I/O s", 11.0, round(r.phase_seconds.get("disk-io", 0.0), 1)),
        ("total s/iteration", 249.0, round(r.elapsed, 0)),
        ("network TB/iteration", 6.2, round(r.comm_bytes / 1e12, 2)),
        ("sustained GF/MSP", 8.0, round(r.sustained_gflops_per_msp, 2)),
        ("aggregate TFLOP/s", 3.4, round(r.aggregate_tflops, 2)),
        ("% of peak", "62%", f"{100 * r.sustained_gflops_per_msp / 12.8:.0f}%"),
    ]
    text = paper_comparison(rows, title="Table 3: C2 FCI(8,66) benchmark, 432 MSPs")
    write_result(
        "table3_c2",
        text,
        rows=[list(row) for row in rows],
        metrics=c2_telemetry.snapshot(),
    )

    # shape assertions
    assert r.phase_seconds["alpha-beta"] > r.phase_seconds["beta-beta"]
    assert 150 < r.elapsed < 400
    assert 4e12 < r.comm_bytes < 9e12
    assert 2.5 < r.aggregate_tflops < 5.5
    assert r.load_imbalance < 30
    assert 0.45 < r.sustained_gflops_per_msp / 12.8 < 0.85


def test_c2_auto_method_iterations(c2):
    """Real numerics: the auto method converges small-scale C2 tightly."""
    res = FCISolver(
        c2,
        "sto-3g",
        frozen_core=2,
        point_group="D2h",
        wavefunction_irrep="Ag",
        method="auto",
        max_iterations=60,
    ).run()
    text = (
        f"C2/STO-3G FCI(8,8) Ag: E = {res.energy:.8f} Eh, "
        f"{res.solve.n_iterations} iterations (paper at 65e9 dets: 25), "
        f"converged={res.solve.converged}, <S^2>={res.s_squared:.2e}"
    )
    write_result("table3_c2_auto_iterations", text)
    assert res.solve.converged
    assert res.solve.n_iterations <= 40
    assert abs(res.s_squared) < 1e-6


def test_bench_c2_trace_iteration(benchmark, c2_spec):
    """Time the full 432-MSP trace simulation of one C2 iteration."""
    trace = TraceFCI(c2_spec, X1Config(n_msps=432))
    benchmark.pedantic(trace.run_iteration, rounds=1, iterations=1)
