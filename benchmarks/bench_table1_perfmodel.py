"""Table 1: performance model of the alpha-beta routine, MOC vs DGEMM.

Regenerates the paper's model columns for the paper's own spaces, verifies
them against instrumented kernel runs on a laptop-scale space, and times the
two kernels (pytest-benchmark) so the kernel-speed gap the model predicts is
actually observable.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import CIProblem, sigma_dgemm, sigma_moc
from repro.parallel import alpha_beta_model, measured_counts
from repro.scf.mo import MOIntegrals

from conftest import write_result


def _random_problem(n=8, na=4, nb=4, seed=0):
    rng = np.random.default_rng(seed)
    h = rng.standard_normal((n, n))
    h = 0.5 * (h + h.T)
    g = rng.standard_normal((n,) * 4)
    g = g + g.transpose(1, 0, 2, 3)
    g = g + g.transpose(0, 1, 3, 2)
    g = g + g.transpose(2, 3, 0, 1)
    return CIProblem(MOIntegrals(h=h, g=g, e_core=0.0, n_orbitals=n), na, nb)


def test_table1_model_rows():
    """Print Table 1 for the paper's benchmark spaces."""
    rows = []
    for label, n, na, nb, nci in [
        ("C2 cc-pVTZ(+1s,1p)", 66, 4, 4, 64_931_348_928),
        ("O- aug-cc-pVQZ", 43, 5, 4, 14_851_999_576),
        ("O aug-cc-pVQZ", 43, 5, 3, 1_484_871_696),
        ("CN+ (Table 2)", 18, 6, 6, 104_806_400),
    ]:
        m = alpha_beta_model(label, n, na, nb, nci)
        rows.append(
            [
                m.label,
                f"{m.moc_operations:.3e}",
                f"{m.dgemm_operations:.3e}",
                f"{m.moc_comm_elements:.3e}",
                f"{m.dgemm_comm_elements:.3e}",
                f"{m.comm_ratio:.1f}x",
            ]
        )
    text = format_table(
        ["space", "MOC ops", "DGEMM ops", "MOC comm", "DGEMM comm", "comm ratio"],
        rows,
        title="Table 1: alpha-beta routine performance model (elements)",
    )
    # headline check: C2 DGEMM communication = 6.2 TB per iteration
    m = alpha_beta_model("C2", 66, 4, 4, 64_931_348_928)
    text += f"\nC2 DGEMM comm volume: {m.dgemm_comm_elements * 8 / 1e12:.2f} TB/iter (paper: 6.2 TB)"
    write_result("table1_model", text)


def test_table1_measured_counts():
    """Check the model's scaling against instrumented kernel counters."""
    prob = _random_problem(7, 3, 3, seed=5)
    counts = measured_counts(prob)
    model = alpha_beta_model("measured", 7, 3, 3, prob.dimension)
    text = format_table(
        ["quantity", "value"],
        [
            ["CI dimension", prob.dimension],
            ["DGEMM flops (measured)", counts["dgemm"]["dgemm_flops"]],
            ["DGEMM gathers (measured)", counts["dgemm"]["gather_elements"]],
            ["MOC indexed ops (measured)", counts["moc"]["indexed_ops"]],
            ["MOC ops (model)", int(model.moc_operations)],
            ["kernel agreement", f'{counts["agreement_error"]:.2e}'],
        ],
        title="Table 1 (measured counters, FCI(6,7) random integrals)",
    )
    write_result("table1_measured", text)
    assert counts["agreement_error"] < 1e-9


@pytest.fixture(scope="module")
def kernel_problem():
    prob = _random_problem(8, 4, 4, seed=9)
    C = prob.random_vector(0)
    # warm the cached tables so the benchmark times the kernel only
    sigma_dgemm(prob, C)
    sigma_moc(prob, C)
    return prob, C


def test_bench_sigma_dgemm(benchmark, kernel_problem):
    prob, C = kernel_problem
    benchmark(sigma_dgemm, prob, C)


def test_bench_sigma_moc(benchmark, kernel_problem):
    prob, C = kernel_problem
    benchmark(sigma_moc, prob, C)
