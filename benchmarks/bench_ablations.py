"""Ablations of the design choices the paper's sections 2-3 call out.

1. **Kernel rates**: the DGEMM algorithm wins because the X1 runs DGEMM at
   10-11 GF/MSP but out-of-cache DAXPY at 2 GF/MSP - sweep the DAXPY rate to
   locate the crossover where MOC would win.
2. **DDI_ACC protocol**: the paper notes remote accumulate costs twice a
   get; compare against a hypothetical 1x hardware accumulate.
3. **Model space size**: convergence of the single-vector methods vs the
   size of the exact-Hamiltonian model space in the preconditioner.
4. **Dynamic vs static mixed-spin scheduling** on a symmetry-heterogeneous
   task mix.
"""

import numpy as np
import pytest
from dataclasses import replace

from repro import FCISolver
from repro.analysis import format_series, format_table
from repro.parallel import FCISpaceSpec, TraceFCI, atom_irreps, build_task_pool
from repro.x1 import DynamicLoadBalancer, Engine, SymmetricHeap, X1Config

from conftest import write_result


@pytest.fixture(scope="module")
def o_spec():
    return FCISpaceSpec(43, 3, 5, "D2h", atom_irreps(43), 0, name="O")


def test_ablation_kernel_rate_crossover(o_spec):
    """MOC vs DGEMM mixed-spin time as the indexed-update rate varies."""
    rates = [0.45e9, 0.9e9, 1.8e9, 3.6e9, 7.2e9]
    moc_times, dgemm_times = [], []
    for rate in rates:
        cfg = X1Config(n_msps=64, indexed_update_rate=rate)
        moc = TraceFCI(o_spec, cfg, algorithm="moc").run_iteration()
        dg = TraceFCI(o_spec, cfg, algorithm="dgemm").run_iteration()
        moc_times.append(round(moc.phase_seconds["alpha-beta"], 1))
        dgemm_times.append(round(dg.phase_seconds["alpha-beta"], 1))
    text = format_series(
        "indexed rate (GF/s-equiv)",
        [f"{2 * r / 1e9:.1f}" for r in rates],
        {"MOC ab (s)": moc_times, "DGEMM ab (s)": dgemm_times},
        title="Ablation 1: mixed-spin time vs indexed-update kernel rate",
    )
    write_result("ablation_kernel_rates", text)
    # at the X1's real rates MOC loses; only an implausibly fast indexed
    # kernel would flip the verdict
    assert moc_times[1] > dgemm_times[1]
    assert moc_times[-1] < moc_times[0] / 4


def test_ablation_ddi_acc_protocol(o_spec):
    """Cost of the lock/get/add/put accumulate vs ideal 1x accumulate."""
    res = {}
    for P in [32, 128]:
        std = TraceFCI(o_spec, X1Config(n_msps=P)).run_iteration()
        res[P] = std
    # communication model: DGEMM moves 3 Nci na bytes: 1x gather + 2x acc.
    # A hardware accumulate would cut the total to 2/3.
    rows = []
    for P, r in res.items():
        acc_share = 2.0 / 3.0 * r.comm_bytes
        rows.append(
            [P, round(r.comm_bytes / 1e9, 1), round(acc_share / 1e9, 1), round(acc_share / 2 / 1e9, 1)]
        )
    text = format_table(
        ["MSPs", "total comm GB", "DDI_ACC GB (2x)", "hw-acc GB (1x)"],
        rows,
        title="Ablation 2: the DDI_ACC get+put protocol doubles accumulate traffic",
    )
    write_result("ablation_ddi_acc", text)
    assert res[32].comm_bytes > 0


def test_ablation_model_space_size(oxygen):
    """Iterations of the auto method vs model-space size (paper section 4)."""
    sizes = [0, 1, 10, 50, 200]
    iters = []
    for size in sizes:
        r = FCISolver(
            oxygen,
            "6-31g",
            frozen_core=1,
            point_group="D2h",
            method="auto",
            model_space_size=size,
            max_iterations=100,
        ).run()
        iters.append(r.solve.n_iterations if r.solve.converged else -1)
    text = format_series(
        "model space size",
        sizes,
        {"auto iterations": iters},
        title="Ablation 3: model-space preconditioner size vs iterations (O atom)",
    )
    write_result("ablation_model_space", text)
    assert all(i > 0 for i in iters[1:])  # converged with any real model space
    assert iters[-1] <= iters[1]  # bigger model space never hurts much


def test_ablation_dynamic_vs_static_lb():
    """Dynamic task pool vs static block assignment on skewed tasks."""
    P = 48
    rng = np.random.default_rng(3)
    costs = rng.lognormal(0.0, 1.2, size=3000) * 1e-3
    tasks = build_task_pool(costs, P)

    def run_dynamic():
        cfg = X1Config(n_msps=P)
        heap = SymmetricHeap(P)
        dlb = DynamicLoadBalancer(heap)

        def prog(proc, h):
            while True:
                t = yield from dlb.inext(proc)
                if t >= len(tasks):
                    break
                yield proc.compute(tasks[t].cost)

        eng = Engine(cfg, heap)
        eng.run([prog] * P)
        return eng

    def run_static():
        cfg = X1Config(n_msps=P)
        heap = SymmetricHeap(P)
        mine = {r: [t for i, t in enumerate(tasks) if i % P == r] for r in range(P)}

        def prog(proc, h):
            for t in mine[proc.rank]:
                yield proc.compute(t.cost)

        eng = Engine(cfg, heap)
        eng.run([prog] * P)
        return eng

    dyn = run_dynamic()
    sta = run_static()
    text = format_table(
        ["scheme", "elapsed ms", "imbalance ms"],
        [
            ["dynamic (DLB counter)", round(dyn.elapsed() * 1e3, 2), round(dyn.load_imbalance() * 1e3, 3)],
            ["static round-robin", round(sta.elapsed() * 1e3, 2), round(sta.load_imbalance() * 1e3, 3)],
        ],
        title="Ablation 4: dynamic vs static scheduling of skewed mixed-spin tasks",
    )
    write_result("ablation_dynamic_static", text)
    assert dyn.load_imbalance() < sta.load_imbalance()


def test_bench_block_column_sweep(benchmark):
    """Blocking width of the serial DGEMM kernel (cache-block ablation)."""
    from repro.core import CIProblem, sigma_dgemm
    from repro.scf.mo import MOIntegrals

    rng = np.random.default_rng(0)
    n = 8
    h = rng.standard_normal((n, n))
    h = 0.5 * (h + h.T)
    g = rng.standard_normal((n,) * 4)
    g = g + g.transpose(1, 0, 2, 3)
    g = g + g.transpose(0, 1, 3, 2)
    g = g + g.transpose(2, 3, 0, 1)
    prob = CIProblem(MOIntegrals(h=h, g=g, e_core=0.0, n_orbitals=n), 4, 4)
    C = prob.random_vector(0)
    sigma_dgemm(prob, C)  # build tables outside the timing

    benchmark(sigma_dgemm, prob, C, block_columns=32)
