"""Robustness overhead and recovery benchmark.

Two claims, same discipline as the telemetry layer's zero-cost default:

* the fault-injection hooks threaded through the engine/DDI hot paths cost
  < 2% wall-clock on the Table-3 C2 trace workload when no injector is
  attached (and an *idle* injector leaves the virtual schedule untouched),
* a seeded dead-rank chaos run of the numeric parallel sigma recovers the
  serial result to machine precision, with the fault/recovery ledger
  attached as evidence.
"""

import time

import numpy as np
import pytest

from repro.core import CIProblem, sigma_dgemm
from repro.faults import ChaosConfig, FaultInjector, FaultPlan
from repro.parallel import FCISpaceSpec, ParallelSigma, TraceFCI, homonuclear_diatomic_irreps
from repro.scf.mo import MOIntegrals
from repro.x1 import X1Config

from conftest import write_result


def _random_problem(n=6, n_alpha=3, n_beta=3):
    rng = np.random.default_rng(42)
    h = rng.standard_normal((n, n))
    h = 0.5 * (h + h.T) + np.diag(np.linspace(-3, 2, n)) * 2
    g = rng.standard_normal((n, n, n, n))
    g = g + g.transpose(1, 0, 2, 3)
    g = g + g.transpose(0, 1, 3, 2)
    g = g + g.transpose(2, 3, 0, 1)
    return CIProblem(MOIntegrals(h=h, g=g, e_core=0.0, n_orbitals=n), n_alpha, n_beta)


def _interleaved_best(factory_a, factory_b, k=9):
    """min-of-k for two workloads, alternated so machine drift cancels."""
    best_a = best_b = float("inf")
    res_a = res_b = None
    for _ in range(k):
        t0 = time.perf_counter()
        res_a = factory_a().run_iteration()
        best_a = min(best_a, time.perf_counter() - t0)
        t0 = time.perf_counter()
        res_b = factory_b().run_iteration()
        best_b = min(best_b, time.perf_counter() - t0)
    return best_a, res_a, best_b, res_b


def test_robustness_overhead_and_recovery():
    # --- disabled-hook overhead on the Table-3 C2 workload ---
    spec = FCISpaceSpec(66, 4, 4, "D2h", homonuclear_diatomic_irreps(66), 0, name="C2")
    cfg = X1Config(n_msps=432)
    t_none, r_none, t_idle, r_idle = _interleaved_best(
        lambda: TraceFCI(spec, cfg),
        lambda: TraceFCI(spec, cfg, faults=FaultInjector(FaultPlan())),
    )
    overhead = (t_idle - t_none) / t_none

    # --- numeric sigma: idle hooks bitwise, dead rank recovered exactly ---
    problem = _random_problem()
    C = problem.random_vector(0)
    ref = sigma_dgemm(problem, C)
    x1 = X1Config(n_msps=4)

    plain = ParallelSigma(problem, x1)
    hooked = ParallelSigma(
        problem, x1, faults=FaultInjector(FaultPlan()), resilient=False
    )
    bitwise = np.array_equal(plain(C), hooked(C))

    probe = ParallelSigma(problem, x1, resilient=True)
    probe(C)
    fi = ChaosConfig(
        ["dead_rank"], seed=1, victim=1, at=0.5, horizon=probe.report.elapsed
    ).injector()
    recovered = ParallelSigma(problem, x1, faults=fi)(C)
    err = float(np.max(np.abs(recovered - ref)))

    lines = [
        "Robustness: fault-hook overhead and chaos recovery",
        "-" * 58,
        f"Table-3 C2 trace iteration, 432 MSPs (best of 9, interleaved):",
        f"  faults=None wall-clock          {t_none:8.3f} s",
        f"  idle FaultInjector wall-clock   {t_idle:8.3f} s",
        f"  disabled-hook overhead          {100 * overhead:+8.2f} %   (budget < 2%)",
        f"  virtual schedule identical      {r_none.elapsed == r_idle.elapsed}",
        f"numeric 4-MSP sigma:",
        f"  idle hooks bitwise identical    {bitwise}",
        f"  dead-rank recovery max |diff|   {err:.3e}  (vs serial sigma)",
    ]
    counts = fi.counts()
    for name in sorted(counts):
        lines.append(f"  {name:32s}{counts[name]:g}")
    write_result(
        "BENCH_robustness",
        "\n".join(lines),
        rows=[
            ["disabled-hook overhead %", "< 2", round(100 * overhead, 3)],
            ["idle hooks bitwise identical", True, bool(bitwise)],
            ["dead-rank recovery max |diff|", "< 1e-12", err],
        ],
        metrics={"fault_counters": counts},
    )

    assert overhead < 0.02
    assert r_none.elapsed == r_idle.elapsed
    assert bitwise
    assert err < 1e-12
    assert counts.get("faults.injected.rank_death") == 1.0
