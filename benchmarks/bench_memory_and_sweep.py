"""Section 2.2 motivation + orbital-count sweep (extensions).

1. **Memory/I-O motivation for the single-vector method**: quantify the
   storage of a Davidson subspace vs the auto single-vector scheme for the
   paper's benchmark spaces, and the filesystem time a disk-backed subspace
   would cost at the paper's measured 293/246 MB/s rates - the argument of
   the paper's section 2.2 in numbers.
2. **Orbital-count sweep**: wall-clock of the real MOC and DGEMM sigma
   kernels as the orbital count grows at fixed electron count - the paper's
   claim that the operation-count gap becomes "insignificant" for large
   bases while the kernel gap persists.
"""

import time

import numpy as np
import pytest

from repro.analysis import format_series, format_table
from repro.core import (
    CIProblem,
    davidson_io_penalty,
    method_footprints,
    sigma_dgemm,
    sigma_moc,
)
from repro.scf.mo import MOIntegrals
from repro.x1 import X1Config

from conftest import write_result


def test_memory_motivation():
    rows = []
    for label, dim in [
        ("O 1.48e9", 1_484_871_696),
        ("O- 14.85e9", 14_851_999_576),
        ("C2 64.93e9", 64_931_348_928),
    ]:
        fps = method_footprints(dim, 432)
        dav, _, auto = fps
        rows.append(
            [
                label,
                f"{dav.total_bytes / 1e12:.1f} TB",
                f"{auto.total_bytes / 1e12:.2f} TB",
                f"{dav.bytes_per_msp / 1e9:.1f} GB",
                f"{auto.bytes_per_msp / 1e9:.2f} GB",
            ]
        )
    text = format_table(
        ["space", "Davidson total", "auto total", "Davidson /MSP", "auto /MSP"],
        rows,
        title="Section 2.2: vector storage, Davidson(m=12) vs single-vector, 432 MSPs",
    )
    penalty = davidson_io_penalty(64_931_348_928, X1Config(n_msps=432))
    text += (
        f"\ndisk-backed Davidson subspace for C2: {penalty / 3600:.1f} hours of "
        f"I/O per 25 iterations at the paper's 293/246 MB/s - vs 249 s/iter compute"
    )
    write_result("memory_motivation", text)

    # the argument must actually hold: auto fits where Davidson dwarfs it
    fps = method_footprints(64_931_348_928, 432)
    assert fps[0].total_bytes > 5 * fps[2].total_bytes
    assert penalty > 25 * 249  # I/O would dominate the entire computation


def _random_problem(n, na, nb, seed=0):
    rng = np.random.default_rng(seed)
    h = rng.standard_normal((n, n))
    h = 0.5 * (h + h.T)
    g = rng.standard_normal((n,) * 4)
    g = g + g.transpose(1, 0, 2, 3)
    g = g + g.transpose(0, 1, 3, 2)
    g = g + g.transpose(2, 3, 0, 1)
    return CIProblem(MOIntegrals(h=h, g=g, e_core=0.0, n_orbitals=n), na, nb)


def test_orbital_sweep():
    """Real-kernel wall-clock vs orbital count at fixed 3+3 electrons."""
    ns = [6, 8, 10, 12]
    t_moc, t_dgemm, ratio = [], [], []
    for n in ns:
        prob = _random_problem(n, 3, 3, seed=n)
        C = prob.random_vector(0)
        sigma_dgemm(prob, C)  # build tables
        sigma_moc(prob, C)
        reps = 3
        t0 = time.perf_counter()
        for _ in range(reps):
            s1 = sigma_dgemm(prob, C)
        td = (time.perf_counter() - t0) / reps
        t0 = time.perf_counter()
        for _ in range(reps):
            s2 = sigma_moc(prob, C)
        tm = (time.perf_counter() - t0) / reps
        assert np.allclose(s1, s2, atol=1e-9)
        t_moc.append(round(tm * 1e3, 1))
        t_dgemm.append(round(td * 1e3, 1))
        ratio.append(round(tm / td, 1))
    text = format_series(
        "orbitals",
        ns,
        {"MOC ms": t_moc, "DGEMM ms": t_dgemm, "MOC/DGEMM": ratio},
        title="Orbital sweep: real sigma kernels, 3a+3b electrons (identical results)",
    )
    write_result("orbital_sweep", text)
    # the DGEMM kernel advantage persists (and typically grows) with n
    assert all(r > 1.0 for r in ratio[1:])


def test_bench_dgemm_largest(benchmark):
    prob = _random_problem(12, 3, 3, seed=12)
    C = prob.random_vector(0)
    sigma_dgemm(prob, C)
    benchmark(sigma_dgemm, prob, C)
