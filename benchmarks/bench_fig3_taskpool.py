"""Figure 3 (design study): task aggregation for dynamic load balancing.

The paper aggregates fine-grained mixed-spin tasks into large tasks of
decreasing size with a fine-grained tail, trading communication (task
requests) against load balance.  This benchmark sweeps the three pool
parameters on a simulated 64-MSP machine with heterogeneous task costs and
reports the resulting load imbalance and DLB-server traffic - reproducing
the design rationale: aggregation cuts task requests by an order of
magnitude while the fine tail keeps the imbalance bounded by one fine task.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.parallel import build_task_pool, pool_statistics
from repro.x1 import DynamicLoadBalancer, Engine, SymmetricHeap, X1Config

from conftest import write_result

P = 64
RNG = np.random.default_rng(7)
UNIT_COSTS = RNG.lognormal(mean=0.0, sigma=0.8, size=5000) * 1e-3  # seconds


def simulate(tasks):
    cfg = X1Config(n_msps=P)
    heap = SymmetricHeap(P)
    dlb = DynamicLoadBalancer(heap)
    n = len(tasks)

    def prog(proc, h):
        while True:
            t = yield from dlb.inext(proc)
            if t >= n:
                break
            yield proc.compute(tasks[t].cost, label="work")

    eng = Engine(cfg, heap)
    eng.run([prog] * P)
    return eng


def sweep_configs():
    return [
        ("fine only", dict(n_fine_per_proc=16, n_large_per_proc=16, n_small_per_proc=0)),
        ("paper (aggregated + tail)", dict(n_fine_per_proc=16, n_large_per_proc=3, n_small_per_proc=4)),
        ("coarse, no tail", dict(n_fine_per_proc=16, n_large_per_proc=1, n_small_per_proc=0)),
        ("one block per proc", dict(n_fine_per_proc=1, n_large_per_proc=1, n_small_per_proc=0)),
    ]


@pytest.fixture(scope="module")
def sweep_results():
    out = {}
    for label, kw in sweep_configs():
        tasks = build_task_pool(UNIT_COSTS, P, **kw)
        eng = simulate(tasks)
        out[label] = (tasks, eng)
    return out


def test_fig3_sweep(sweep_results):
    rows = []
    for label, (tasks, eng) in sweep_results.items():
        stats = pool_statistics(tasks)
        rows.append(
            [
                label,
                stats["n_tasks"],
                round(eng.elapsed() * 1e3, 2),
                round(eng.load_imbalance() * 1e3, 3),
                round(stats["tail_cost"] * 1e3, 3),
            ]
        )
    text = format_table(
        ["pool", "tasks", "elapsed ms", "imbalance ms", "tail task ms"],
        rows,
        title="Fig 3 study: task aggregation vs load balance (64 MSPs, 5000 units)",
    )
    write_result("fig3_taskpool", text)

    fine = sweep_results["fine only"][1]
    paper = sweep_results["paper (aggregated + tail)"][1]
    no_tail = sweep_results["coarse, no tail"][1]
    coarse = sweep_results["one block per proc"][1]

    # the aggregated pool needs far fewer task requests...
    assert len(sweep_results["paper (aggregated + tail)"][0]) < 0.6 * len(
        sweep_results["fine only"][0]
    )
    # ...while keeping total time close to the fine pool's (within 25%)...
    assert paper.elapsed() < 1.25 * fine.elapsed()
    # ...and the fine tail pays off: dramatically better balance than the
    # same aggregation without a tail or a static one-block split
    assert paper.load_imbalance() < 0.5 * no_tail.load_imbalance()
    assert paper.load_imbalance() < 0.5 * coarse.load_imbalance()


def test_fig3_decreasing_order_matters():
    """Serving large tasks first is what makes aggregation safe."""
    kw = dict(n_fine_per_proc=16, n_large_per_proc=3, n_small_per_proc=4)
    tasks = build_task_pool(UNIT_COSTS, P, **kw)
    eng_ordered = simulate(tasks)
    eng_reversed = simulate(list(reversed(tasks)))
    # big-tasks-last risks one straggler holding the whole machine
    assert eng_ordered.elapsed() <= eng_reversed.elapsed() + 1e-9


def test_bench_taskpool_build(benchmark):
    benchmark(build_task_pool, UNIT_COSTS, P, n_fine_per_proc=16, n_large_per_proc=3, n_small_per_proc=4)
