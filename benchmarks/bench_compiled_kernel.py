"""Compiled (link-index) sigma kernel vs the DGEMM reference.

Prices the compiled hot path on the paper-sized FCI(6+5,13) space
(1716 x 1287 determinants):

* **sigma speedup** — ``CompiledKernel`` vs ``DgemmKernel``, best-of
  timings over repeated applies.  Gate: >= 5x, enforced only when numba
  is importable (``HAVE_NUMBA``); the pure-NumPy fallback *is* the DGEMM
  sweep, so without numba the ratio is ~1x and reported informationally.
* **bitwise identity** — always asserted, jitted or not: the compiled
  kernel must reproduce ``DgemmKernel`` bit for bit (same DGEMM operands
  at the same ``column_blocks``, scatters in ``_segment_sum`` order).
* **vectorized table build** — the plan-compilation half of the tentpole:
  ``LinkIndexTables`` come from vectorized NumPy builders; timed against
  the per-string loop oracles they replaced.
"""

import time

import numpy as np

from repro.core import CIProblem, DgemmKernel, SigmaPlan
from repro.core.excitations import (
    _loop_single_excitation_arrays,
    _single_excitation_arrays,
)
from repro.core.compiled import NUMBA_VERSION
from repro.core.kernels import HAVE_NUMBA, CompiledKernel
from repro.core.strings import StringSpace
from repro.scf.mo import MOIntegrals

from conftest import write_result

SPEEDUP_GATE = 5.0


def _random_problem(n, n_alpha, n_beta, seed=42):
    rng = np.random.default_rng(seed)
    h = rng.standard_normal((n, n))
    h = 0.5 * (h + h.T)
    g = rng.standard_normal((n, n, n, n))
    g = g + g.transpose(1, 0, 2, 3)
    g = g + g.transpose(0, 1, 3, 2)
    g = g + g.transpose(2, 3, 0, 1)
    return CIProblem(MOIntegrals(h=h, g=g, e_core=0.0, n_orbitals=n), n_alpha, n_beta)


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_compiled_kernel_speedup_and_bitwise_identity():
    n, na, nb = 13, 6, 5  # FCI(6+5,13): 1716 x 1287
    problem = _random_problem(n, na, nb)
    plan = SigmaPlan.for_problem(problem)
    C = problem.random_vector(0)

    ref = DgemmKernel(plan)
    compiled = CompiledKernel(plan, block_columns=ref.block_columns)

    # bitwise identity first (also serves as the jit warm-up apply, so the
    # timed loop below never pays numba compilation)
    sigma_ref = ref.apply(C, None)
    sigma_compiled = compiled.apply(C, None)
    assert np.array_equal(sigma_compiled, sigma_ref), (
        "CompiledKernel is not bitwise-identical to DgemmKernel"
    )

    repeats = 3
    t_ref = _best_of(lambda: ref.apply(C, None), repeats)
    t_compiled = _best_of(lambda: compiled.apply(C, None), repeats)
    speedup = t_ref / t_compiled

    # vectorized link-table build vs the per-string loop oracle, on the
    # larger string space (13 orbitals, 6 electrons: 1716 strings)
    space = StringSpace(n, na)
    t_loop = _best_of(lambda: _loop_single_excitation_arrays(space), 2)
    t_vec = _best_of(lambda: _single_excitation_arrays(space), 2)
    build_speedup = t_loop / t_vec

    lines = [
        f"compiled sigma kernel on FCI({na}+{nb},{n}) "
        f"({plan.shape[0]} x {plan.shape[1]}), block_columns={ref.block_columns}",
        f"numba: {'present ' + str(NUMBA_VERSION) if HAVE_NUMBA else 'absent'}"
        f" -> {'jitted gather/scatter' if HAVE_NUMBA else 'pure-NumPy fallback'}",
        "",
        f"{'kernel':>10} {'seconds':>10}",
        f"{'dgemm':>10} {t_ref:10.4f}",
        f"{'compiled':>10} {t_compiled:10.4f}",
        f"sigma speedup: {speedup:.2f}x "
        f"(gate >= {SPEEDUP_GATE}x {'ENFORCED' if HAVE_NUMBA else 'informational'})",
        "bitwise identical to DgemmKernel: True",
        "",
        f"link-table build ({space.size} strings): vectorized {t_vec:.4f}s "
        f"vs loop {t_loop:.4f}s -> {build_speedup:.1f}x",
    ]
    rows = [
        {"kernel": "dgemm", "seconds": t_ref},
        {"kernel": "compiled", "seconds": t_compiled, "jitted": HAVE_NUMBA},
    ]
    write_result(
        "BENCH_compiled",
        "\n".join(lines),
        rows=rows,
        metrics={
            "space": f"FCI({na}+{nb},{n})",
            "shape": list(plan.shape),
            "block_columns": ref.block_columns,
            "dgemm_seconds": t_ref,
            "compiled_seconds": t_compiled,
            "speedup": speedup,
            "gate": SPEEDUP_GATE,
            "gate_enforced": HAVE_NUMBA,
            "jitted": HAVE_NUMBA,
            "numba_version": NUMBA_VERSION,
            "bitwise_identical": True,
            "table_build_vectorized_seconds": t_vec,
            "table_build_loop_seconds": t_loop,
            "table_build_speedup": build_speedup,
        },
    )
    if HAVE_NUMBA:
        assert speedup >= SPEEDUP_GATE, (
            f"compiled-kernel speedup {speedup:.2f}x below the "
            f"{SPEEDUP_GATE}x gate with numba present"
        )
    # plan compilation must get faster regardless of numba: the vectorized
    # builders replace the per-string loops outright
    assert build_speedup > 1.0
