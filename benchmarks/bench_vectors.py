"""CI-vector storage layer: overhead gate + CDFCI-vs-Davidson table.

Two gated results, written to ``BENCH_vectors.json``:

1. **Dense-vs-mmap overhead** on an in-RAM size: the identical Davidson
   solve run through plain ndarrays and through :class:`MmapStore` must
   agree to 1e-10 and the out-of-core run must cost <10% extra — the
   storage layer is a representation change, not a slowdown, when the
   space still fits.
2. **CDFCI vs Davidson on FCI(6+5,13)** (2.2M determinants, weakly
   coupled synthetic integrals): iteration/energy/footprint table
   comparing the sparse coordinate-descent solver against dense
   Davidson — the "earns its keep" demonstration that a bounded-support
   solver descends toward the dense answer while holding ~2% of the
   vector.  Gated on the variational bound, monotone sweep energies,
   and recovering a majority of the Davidson correlation energy.
"""

import time

import numpy as np

from repro.analysis import format_table
from repro.core import CIProblem, ModelSpacePreconditioner, davidson_solve, sigma_dgemm
from repro.core.cdfci import cdfci_solve
from repro.core.vectors import MmapStore
from repro.scf.mo import MOIntegrals

from conftest import write_result


def _random_problem(n, na, nb, seed=0):
    rng = np.random.default_rng(seed)
    h = rng.standard_normal((n, n))
    h = 0.5 * (h + h.T)
    g = rng.standard_normal((n,) * 4)
    g = g + g.transpose(1, 0, 2, 3)
    g = g + g.transpose(0, 1, 3, 2)
    g = g + g.transpose(2, 3, 0, 1)
    return CIProblem(MOIntegrals(h=h, g=g, e_core=0.0, n_orbitals=n), na, nb)


def _weakly_coupled_problem(n, na, nb, scale, seed=0):
    # a spread orbital-energy ladder plus weak random couplings: the ground
    # state concentrates on a compact set of determinants, which is the
    # regime coordinate-descent FCI is built for (fully random integrals
    # couple every determinant equally and defeat any bounded-support
    # method long before it defeats Davidson)
    rng = np.random.default_rng(seed)
    h = np.diag(np.linspace(-2.0, 3.0, n)) + scale * rng.standard_normal((n, n))
    h = 0.5 * (h + h.T)
    g = scale * rng.standard_normal((n,) * 4)
    g = g + g.transpose(1, 0, 2, 3)
    g = g + g.transpose(0, 1, 3, 2)
    g = g + g.transpose(2, 3, 0, 1)
    return CIProblem(MOIntegrals(h=h, g=g, e_core=0.0, n_orbitals=n), na, nb)


def test_bench_vectors(tmp_path):
    rows = []
    metrics = {}

    # -- 1. dense-vs-mmap overhead on an in-RAM size (dim 44100) ------------
    prob = _random_problem(10, 4, 4, seed=5)
    precond = ModelSpacePreconditioner(prob, 200)
    guess = precond.ground_state_guess()

    def sigma(C):
        return sigma_dgemm(prob, C)

    sigma(guess)  # compile tables outside the timed region

    def timed(store_factory):
        best, energy = np.inf, None
        for _ in range(3):
            store = store_factory()
            t0 = time.perf_counter()
            # random integrals lack the diagonal dominance of molecular
            # Hamiltonians, so the residual gate is the wall-clock driver
            res = davidson_solve(
                sigma, guess, precond, store=store,
                residual_tol=1e-4, max_iterations=150,
            )
            best = min(best, time.perf_counter() - t0)
            if store is not None:
                store.close()
            assert res.converged
            energy = res.energy
        return best, energy

    t_dense, e_dense = timed(lambda: None)
    t_mmap, e_mmap = timed(lambda: MmapStore(prob.shape, directory=str(tmp_path)))
    overhead = t_mmap / t_dense - 1.0
    assert abs(e_mmap - e_dense) < 1e-10
    rows.append(
        ["davidson dense", prob.dimension, "-", f"{e_dense:.10f}", f"{t_dense:.2f}"]
    )
    rows.append(
        [
            "davidson mmap",
            prob.dimension,
            f"{abs(e_mmap - e_dense):.1e}",
            f"{e_mmap:.10f}",
            f"{t_mmap:.2f}",
        ]
    )
    metrics["mmap_overhead_frac"] = round(overhead, 4)
    metrics["in_ram_dimension"] = prob.dimension

    # -- 2. CDFCI vs Davidson on FCI(6+5,13): 1716 x 1287 = 2.2M dets -------
    big = _weakly_coupled_problem(13, 6, 5, scale=0.01, seed=7)
    precond = ModelSpacePreconditioner(big, 50)
    guess = precond.ground_state_guess()

    def sigma_big(C):
        return sigma_dgemm(big, C)

    t0 = time.perf_counter()
    dav = davidson_solve(
        sigma_big, guess, precond, residual_tol=1e-4, max_iterations=25
    )
    t_dav = time.perf_counter() - t0

    capacity = 50_000
    t0 = time.perf_counter()
    cd = cdfci_solve(
        big,
        guess=guess,
        capacity=capacity,
        updates_per_iteration=1000,
        max_iterations=10,
    )
    t_cd = time.perf_counter() - t0

    err = cd.energy - dav.energy
    # fraction of the Davidson correlation energy (measured from cdfci's
    # first full sweep) recovered within the fixed coordinate-update budget
    e_first = cd.energies[0]
    recovered = (e_first - cd.energy) / (e_first - dav.energy)
    rows.append(
        [
            f"davidson ({dav.n_iterations} it)",
            big.dimension,
            "-",
            f"{dav.energy:.8f}",
            f"{t_dav:.1f}",
        ]
    )
    rows.append(
        [
            f"cdfci ({cd.n_iterations} sweeps, cap {capacity})",
            capacity,
            f"{err:+.2e}",
            f"{cd.energy:.8f}",
            f"{t_cd:.1f}",
        ]
    )
    metrics["fci_6p5_13"] = {
        "dimension": big.dimension,
        "davidson_energy": dav.energy,
        "davidson_iterations": dav.n_iterations,
        "cdfci_energy": cd.energy,
        "cdfci_sweeps": cd.n_iterations,
        "cdfci_capacity": capacity,
        "cdfci_minus_davidson": err,
        "cdfci_recovered_correlation_frac": round(recovered, 4),
        "support_fraction": capacity / big.dimension,
    }

    text = format_table(
        ["run", "held dets", "|dE| vs dense", "energy", "wall s"],
        rows,
        title="CI-vector stores: mmap overhead (in-RAM) + CDFCI vs Davidson, FCI(6+5,13)",
    )
    text += (
        f"\nmmap overhead on in-RAM size: {100 * overhead:+.1f}% (gate: <10%)"
        f"\ncdfci holds {100 * capacity / big.dimension:.1f}% of the 2.2M-det vector"
        f" and recovers {100 * recovered:.1f}% of the Davidson correlation"
        f" energy (gate: >50%)"
    )
    write_result("BENCH_vectors", text, rows=rows, metrics=metrics)

    # the gates
    assert overhead < 0.10, f"mmap overhead {100 * overhead:.1f}% exceeds 10%"
    # a coordinate solver bounded to ~2% of the space never dips below the
    # dense answer (variational bound; small slack because the Davidson
    # reference itself stops at residual_tol=1e-4)...
    assert err > -1e-3
    # ...descends monotonically sweep over sweep...
    sweeps = np.asarray(cd.energies)
    assert np.all(np.diff(sweeps) <= 1e-9)
    # ...and recovers most of the correlation energy within its fixed
    # budget of 10k coordinate updates (measured ~69%; the tail of
    # coordinate descent is linear-rate, so exact agreement is a test
    # concern — see tests/test_vectors.py — not a benchmark gate)
    assert recovered > 0.50, f"cdfci recovered only {100 * recovered:.1f}%"
