"""Strong-scaling of the shm backend: real processes, one big sigma.

The paper's scaling figure is about one thing: does adding processors to
a fixed FCI space keep making sigma faster?  This benchmark asks the same
question of the ``"shm"`` execution backend on a determinant space of
paper-relevant size (>= 1e6 determinants), sweeping the worker count and
recording the strong-scaling curve into ``BENCH_shm_speedup.json``.

Gate: >= 1.5x speedup at 4 workers over 1 worker — *enforced only on
machines with >= 4 CPUs*; on smaller boxes (CI runners, laptops) the
curve is still measured and recorded, with ``gate_enforced: false`` in
the metrics so downstream tooling knows why no assertion fired.

Environment overrides (all optional):

* ``REPRO_SHM_BENCH_SPACE``   — "n,na,nb" FCI space (default "13,6,5",
  C(13,6) x C(13,5) = 2,208,492 determinants)
* ``REPRO_SHM_BENCH_WORKERS`` — comma list of worker counts (default "1,2,4")
* ``REPRO_SHM_BENCH_GATE``    — speedup gate at the largest count (default 1.5)
* ``REPRO_SHM_BENCH_REPEATS`` — timed repetitions per count (default 3)
"""

import os
import time

import numpy as np

from repro.core import CIProblem, SigmaPlan
from repro.parallel import ParallelSigma
from repro.scf.mo import MOIntegrals

from conftest import write_result


def _env(name, default):
    return os.environ.get(f"REPRO_SHM_BENCH_{name}", default)


def _random_problem(n, n_alpha, n_beta, seed=42):
    rng = np.random.default_rng(seed)
    h = rng.standard_normal((n, n))
    h = 0.5 * (h + h.T) + np.diag(np.linspace(-3, 2, n)) * 2
    g = rng.standard_normal((n, n, n, n))
    g = g + g.transpose(1, 0, 2, 3)
    g = g + g.transpose(0, 1, 3, 2)
    g = g + g.transpose(2, 3, 0, 1)
    return CIProblem(MOIntegrals(h=h, g=g, e_core=0.0, n_orbitals=n), n_alpha, n_beta)


def _time_sigma(problem, C, n_workers, repeats):
    """Best wall-clock of ``repeats`` sigma calls on a warm n-worker pool."""
    with ParallelSigma(problem, backend="shm", n_workers=n_workers) as ps:
        ps(C)  # warm-up: absorbs spawn + first-touch costs
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            ps(C)
            best = min(best, time.perf_counter() - t0)
        gflops = ps.report.gflops_rate()
    return best, gflops


def test_shm_strong_scaling():
    n, na, nb = (int(x) for x in _env("SPACE", "13,6,5").split(","))
    worker_counts = [int(x) for x in _env("WORKERS", "1,2,4").split(",")]
    gate = float(_env("GATE", "1.5"))
    repeats = int(_env("REPEATS", "3"))
    cpus = os.cpu_count() or 1
    # a 1.5x-at-4-workers gate is meaningless when the OS timeslices all
    # workers onto fewer cores than the largest count needs
    gate_enforced = cpus >= max(worker_counts)

    problem = _random_problem(n, na, nb)
    n_det = problem.shape[0] * problem.shape[1]
    assert n_det >= 1_000_000, (
        f"FCI({na}+{nb},{n}) has only {n_det:,} determinants; the scaling "
        "question needs a paper-sized space (>= 1e6)"
    )
    SigmaPlan.for_problem(problem)  # compile tables once, outside the timings
    C = problem.random_vector(0)

    lines = [
        f"shm strong scaling: FCI({na}+{nb},{n}), "
        f"{n_det:,} determinants, {cpus} CPUs"
    ]
    lines.append(f"{'workers':>8} {'seconds':>10} {'speedup':>8} {'GF/s':>8}")
    rows = []
    times = {}
    for w in worker_counts:
        t, gflops = _time_sigma(problem, C, w, repeats)
        times[w] = t
        s = times[worker_counts[0]] / t
        rows.append({"n_workers": w, "seconds": t, "speedup": s, "gflops": gflops})
        lines.append(f"{w:>8} {t:>10.3f} {s:>7.2f}x {gflops:>8.2f}")

    largest = worker_counts[-1]
    speedup = times[worker_counts[0]] / times[largest]
    lines.append("")
    if gate_enforced:
        gate_note = "enforced"
    else:
        gate_note = f"recorded only: {cpus} < {max(worker_counts)} CPUs"
    lines.append(
        f"speedup at {largest} workers: {speedup:.2f}x (gate {gate:.1f}x, {gate_note})"
    )

    write_result(
        "BENCH_shm_speedup",
        "\n".join(lines),
        rows=rows,
        metrics={
            "space": {"n_orbitals": n, "n_alpha": na, "n_beta": nb},
            "n_determinants": n_det,
            "cpu_count": cpus,
            "worker_counts": worker_counts,
            f"speedup_at_{largest}": speedup,
            "gate": gate,
            "gate_enforced": gate_enforced,
        },
    )
    if gate_enforced:
        assert speedup >= gate, (
            f"shm speedup at {largest} workers is {speedup:.2f}x, "
            f"below the {gate:.1f}x gate"
        )
