"""Table 2: iterations required by the four diagonalization methods.

The paper compares Davidson (subspace), Olsen, modified (damped) Olsen and
the automatically adjusted single-vector method on CH3OH, H2O2, CN+ and the
O atom, converged to 1e-10 Eh.  The paper's CI spaces are 18M-506M
determinants; we run the *same chemistries* at laptop scale (STO-3G/6-31G,
frozen cores, a truncated active window for CH3OH) and reproduce the
*ranking*: Olsen fails to converge tightly (marked NC), the damped variant
rescues some cases but not CN+, and Davidson and the auto-adjusted method
both converge tightly - the auto method with a comparable iteration count
and no subspace storage.

Entries are also marked NC when a run "converges" to the wrong state
(energy off the Davidson reference), which is how Olsen typically fails.
"""

import pytest

from repro import FCISolver
from repro.analysis import format_table

from conftest import write_result

MAX_ITER = 80


def _run(mol, method, **kw):
    solver = FCISolver(mol, method=method, max_iterations=MAX_ITER, **kw)
    return solver.run()


def _entry(result, reference_energy):
    ok = result.solve.converged and abs(result.energy - reference_energy) < 1e-6
    return str(result.solve.n_iterations) if ok else "NC"


CASES = [
    # label, fixture name, solver kwargs
    ("CH3OH (14e,10o)", "methanol", dict(basis="sto-3g", frozen_core=2, n_active=10)),
    ("H2O2 (14e,10o)", "peroxide", dict(basis="sto-3g", frozen_core=2)),
    (
        "CN+ (8e,8o)",
        "cn_plus",
        dict(basis="sto-3g", frozen_core=2, point_group="C2v", wavefunction_irrep="A1"),
    ),
    ("O 3P (6e,8o)", "oxygen", dict(basis="6-31g", frozen_core=1, point_group="D2h")),
]


@pytest.fixture(scope="module")
def table2_rows(request):
    rows = []
    for label, fixture, kw in CASES:
        mol = request.getfixturevalue(fixture)
        ref = _run(mol, "davidson", **kw)
        assert ref.solve.converged, f"Davidson reference failed for {label}"
        row = [label, ref.problem.symmetry_dimension()]
        row.append(_entry(ref, ref.energy))
        for method in ["olsen", "olsen-damped", "auto"]:
            res = _run(mol, method, **kw)
            row.append(_entry(res, ref.energy))
        row.append(f"{ref.energy:.8f}")
        rows.append(row)
    return rows


def test_table2_rows(table2_rows):
    text = format_table(
        ["molecule", "dim", "Davidson", "Olsen", "Olsen(0.7)", "Auto", "E(FCI)"],
        table2_rows,
        title=(
            "Table 2: iterations to 1e-10 Eh (NC = not tightly converged / "
            "wrong state)\npaper rows: CH3OH 41M dets: 17/NC/19/15; "
            "H2O2 506M: 17/NC/22/15; CN+ 105M: 41/NC/>>60/22; O 18M: 11/9/9/9"
        ),
    )
    write_result("table2_diagonalization", text)

    # shape assertions matching the paper's findings
    by_label = {r[0]: r for r in table2_rows}
    # Davidson and Auto converge everywhere
    for row in table2_rows:
        assert row[2] != "NC", f"Davidson failed: {row[0]}"
        assert row[5] != "NC", f"Auto failed: {row[0]}"
    # Olsen fails on the strongly multireference CN+ case
    assert by_label["CN+ (8e,8o)"][3] == "NC"
    # the damped variant also fails for CN+ (paper: ">>60")
    assert by_label["CN+ (8e,8o)"][4] == "NC"


def test_bench_auto_method(benchmark, oxygen):
    """Time one full auto-adjusted solve (the paper's production method)."""

    def run():
        return _run(oxygen, "auto", basis="6-31g", frozen_core=1, point_group="D2h")

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.solve.converged
