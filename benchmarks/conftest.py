"""Shared benchmark fixtures: molecules and a results writer.

Every benchmark prints the rows/series of the paper table or figure it
regenerates and writes them under ``benchmarks/results/`` twice: the
human-readable text as ``<name>.txt`` and a structured ``<name>.json``
(schema: name, timestamp, text, rows, metrics) so downstream tooling can
diff GF-rates and communication volumes across runs without re-parsing
tables.

Gated perf-trajectory results (names starting with ``BENCH_``) are
additionally written as canonical root-level ``BENCH_<name>.json`` files:
``benchmarks/results/`` is gitignored scratch space, while the root-level
copies are committed and uploaded as CI artifacts, so the perf trajectory
survives across PRs.
"""

from __future__ import annotations

import datetime
import functools
import json
import os
import pathlib
import platform
import subprocess
import sys

import numpy as np
import pytest

from repro.molecule import Molecule
from repro.parallel.backend import backend_names

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent


@functools.lru_cache(maxsize=1)
def provenance() -> dict:
    """Where a benchmark number came from: commit, interpreter, machine.

    Stamped into every result JSON so a ``BENCH_*.json`` diffed across PRs
    identifies its commit and hardware without consulting CI logs.
    """
    try:
        git_sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except Exception:
        git_sha = "unknown"
    return {
        "git_sha": git_sha,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "backends": sorted(backend_names()),
    }


def write_result(
    name: str,
    text: str,
    *,
    rows: list | None = None,
    metrics: dict | None = None,
) -> list[pathlib.Path]:
    """Write a benchmark result as text and structured JSON.

    ``rows`` is the (paper, measured) comparison table as plain data;
    ``metrics`` is a metrics snapshot (e.g. ``Telemetry.snapshot()`` or any
    JSON-serializable dict).  Gated results (``BENCH_*``) also land as a
    canonical JSON at the repository root.  Returns the paths written.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    txt_path = RESULTS_DIR / f"{name}.txt"
    txt_path.write_text(text + "\n")
    payload = {
        "name": name,
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "provenance": provenance(),
        "text": text,
        "rows": rows,
        "metrics": metrics,
    }
    blob = json.dumps(payload, indent=2, default=str) + "\n"
    json_path = RESULTS_DIR / f"{name}.json"
    json_path.write_text(blob)
    paths = [txt_path, json_path]
    if name.startswith("BENCH_"):
        root_path = REPO_ROOT / f"{name}.json"
        root_path.write_text(blob)
        paths.append(root_path)
    print("\n" + text)
    return paths


@pytest.fixture(scope="session")
def methanol():
    # CH3OH, near-experimental geometry (bohr)
    return Molecule.from_atoms(
        [
            ("C", (-0.0503, 1.2847, 0.0)),
            ("O", (-0.0503, -1.4244, 0.0)),
            ("H", (1.9068, 1.9747, 0.0)),
            ("H", (-0.9776, 2.0297, 1.6741)),
            ("H", (-0.9776, 2.0297, -1.6741)),
            ("H", (1.6473, -2.0265, 0.0)),
        ],
        name="CH3OH",
    )


@pytest.fixture(scope="session")
def peroxide():
    # H2O2 (bohr), C2-like geometry
    return Molecule.from_atoms(
        [
            ("O", (0.0, 1.3711, -0.1141)),
            ("O", (0.0, -1.3711, -0.1141)),
            ("H", (1.5874, 1.7605, 0.9129)),
            ("H", (-1.5874, -1.7605, 0.9129)),
        ],
        name="H2O2",
    )


@pytest.fixture(scope="session")
def cn_plus():
    return Molecule.from_atoms(
        [("C", (0, 0, 0)), ("N", (0, 0, 2.2))], charge=1, name="CN+"
    )


@pytest.fixture(scope="session")
def oxygen():
    return Molecule.from_atoms([("O", (0, 0, 0))], multiplicity=3, name="O")


@pytest.fixture(scope="session")
def c2():
    # C2 at r_e ~ 1.2425 A = 2.348 bohr
    return Molecule.from_atoms(
        [("C", (0, 0, -1.174)), ("C", (0, 0, 1.174))], name="C2"
    )
