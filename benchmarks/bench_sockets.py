"""Sockets-backend cost profile: verb round-trips and sigma throughput.

The TCP coordinator pays a real wire protocol (8-byte length prefix +
pickled tuple, a socket round-trip per ``get``/``fetch_add``) where the
shm backend pays a memory load, so the interesting questions are *how
much* each DDI verb costs over loopback and how much of it the sigma
pipeline actually feels once ``acc`` is fire-and-forget and only
``quiet`` fences.  This benchmark measures both and records them into
``BENCH_sockets.json``:

1. per-verb round-trip latency on a live coordinator (``get`` of a small
   window, ``fetch_add``, and an ``acc`` + ``quiet`` fence), median over
   many iterations;
2. warm-pool sigma wall-clock on the same CI space through ``"sockets"``
   vs ``"shm"``, same worker count and blocking — by construction the
   two results are bitwise-identical, so the delta is pure substrate.

Everything here is **informational only** (``gate_enforced: false``,
never asserted): loopback latency on a shared CI runner is weather, not
trajectory.  The gated correctness bar for this backend lives in the
conformance suite and ``scripts/sockets_smoke.py``.

Environment overrides (all optional):

* ``REPRO_SOCKETS_BENCH_SPACE``   — "n,na,nb" FCI space (default "11,5,4",
  C(11,5) x C(11,4) = 152,460 determinants)
* ``REPRO_SOCKETS_BENCH_WORKERS`` — worker count for the sigma comparison
  (default "2")
* ``REPRO_SOCKETS_BENCH_REPEATS`` — timed sigma repetitions (default 3)
* ``REPRO_SOCKETS_BENCH_VERB_ITERS`` — verb round-trips timed (default 300)
"""

import os
import statistics
import time

import numpy as np

from repro.core import CIProblem, SigmaPlan
from repro.parallel import ParallelSigma
from repro.parallel.sockets import Coordinator, SocketComm
from repro.scf.mo import MOIntegrals

from conftest import write_result


def _env(name, default):
    return os.environ.get(f"REPRO_SOCKETS_BENCH_{name}", default)


def _random_problem(n, n_alpha, n_beta, seed=42):
    rng = np.random.default_rng(seed)
    h = rng.standard_normal((n, n))
    h = 0.5 * (h + h.T)
    g = rng.standard_normal((n, n, n, n))
    g = g + g.transpose(1, 0, 2, 3)
    g = g + g.transpose(0, 1, 3, 2)
    g = g + g.transpose(2, 3, 0, 1)
    return CIProblem(MOIntegrals(h=h, g=g, e_core=0.0, n_orbitals=n), n_alpha, n_beta)


def _median_us(samples):
    return statistics.median(samples) * 1e6


def _time_verbs(iters):
    """Median loopback round-trip per verb, in microseconds."""
    co = Coordinator({"a": (64, 64)}, n_ranks=1)
    client = SocketComm.connect(co.spec(), 0)
    try:
        window = (0, slice(0, 8))
        patch = np.ones(8)
        # warm-up: connection setup, allocator, first pickles
        for _ in range(20):
            client.get("a", window)
            client.fetch_add()
            client.acc("a", window, patch)
            client.quiet()

        get_s, inc_s, fence_s = [], [], []
        for _ in range(iters):
            t0 = time.perf_counter()
            client.get("a", window)
            get_s.append(time.perf_counter() - t0)
        for _ in range(iters):
            t0 = time.perf_counter()
            client.fetch_add()
            inc_s.append(time.perf_counter() - t0)
        for _ in range(iters):
            t0 = time.perf_counter()
            client.acc("a", window, patch)
            client.quiet()
            fence_s.append(time.perf_counter() - t0)
    finally:
        client.close()
        co.close()
    return {
        "get_us": _median_us(get_s),
        "fetch_add_us": _median_us(inc_s),
        "acc_quiet_us": _median_us(fence_s),
    }


def _time_sigma(problem, C, backend, n_workers, repeats):
    """Best wall-clock of ``repeats`` sigma calls on a warm pool."""
    with ParallelSigma(problem, backend=backend, n_workers=n_workers) as ps:
        out = ps(C)  # warm-up: absorbs spawn + handshake + first-touch
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            ps(C)
            best = min(best, time.perf_counter() - t0)
        gflops = ps.report.gflops_rate()
        bytes_moved = ps.report.bytes_communicated
    return best, gflops, bytes_moved, out


def test_sockets_cost_profile():
    n, na, nb = (int(x) for x in _env("SPACE", "11,5,4").split(","))
    n_workers = int(_env("WORKERS", "2"))
    repeats = int(_env("REPEATS", "3"))
    verb_iters = int(_env("VERB_ITERS", "300"))

    verbs = _time_verbs(verb_iters)

    problem = _random_problem(n, na, nb)
    n_det = problem.shape[0] * problem.shape[1]
    SigmaPlan.for_problem(problem)  # compile tables once, outside the timings
    C = problem.random_vector(0)

    rows = []
    results = {}
    for backend in ("shm", "sockets"):
        t, gflops, bytes_moved, out = _time_sigma(
            problem, C, backend, n_workers, repeats
        )
        results[backend] = (t, out)
        rows.append(
            {
                "backend": backend,
                "seconds": t,
                "gflops": gflops,
                "bytes": bytes_moved,
            }
        )
    # the substrates must agree bit for bit; otherwise the timing ratio
    # compares two different computations
    assert np.array_equal(results["shm"][1], results["sockets"][1])
    ratio = results["sockets"][0] / results["shm"][0]

    lines = [
        f"sockets cost profile: FCI({na}+{nb},{n}), {n_det:,} determinants, "
        f"{n_workers} workers",
        "",
        f"verb round-trip latency over loopback TCP ({verb_iters} iters, median):",
        f"  get (8-double window) {verbs['get_us']:>9.1f} us",
        f"  fetch_add             {verbs['fetch_add_us']:>9.1f} us",
        f"  acc + quiet fence     {verbs['acc_quiet_us']:>9.1f} us",
        "",
        f"{'backend':>8} {'seconds':>10} {'GF/s':>8} {'MB moved':>10}",
    ]
    for r in rows:
        lines.append(
            f"{r['backend']:>8} {r['seconds']:>10.3f} {r['gflops']:>8.2f} "
            f"{r['bytes'] / 1e6:>10.2f}"
        )
    lines.append("")
    lines.append(
        f"sockets/shm sigma time ratio: {ratio:.2f}x "
        "(informational only, never gated)"
    )

    write_result(
        "BENCH_sockets",
        "\n".join(lines),
        rows=rows,
        metrics={
            "space": {"n_orbitals": n, "n_alpha": na, "n_beta": nb},
            "n_determinants": n_det,
            "n_workers": n_workers,
            "verb_latency_us": verbs,
            "sockets_over_shm_ratio": ratio,
            "gate_enforced": False,
        },
    )
